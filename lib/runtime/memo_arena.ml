open Rats_peg

type t = {
  mutable idx : int array;
  mutable idx_len : int;
  mutable res : int array;
  mutable vers : int array;
  mutable exts : int array;
  mutable cmax : int array;
  mutable vals : Value.t array;
  mutable cap : int;
  mutable used : int;
  mutable free : int array;
  mutable nfree : int;
  nslots : int;
  nvslots : int;
  vmap : int array;
}

let create ~nslots ~vmap =
  if Array.length vmap <> nslots then invalid_arg "Memo_arena.create";
  let nvslots = Array.fold_left (fun n v -> if v >= 0 then n + 1 else n) 0 vmap in
  {
    idx = [||];
    idx_len = -1;
    res = [||];
    vers = [||];
    exts = [||];
    cmax = [||];
    vals = [||];
    cap = 0;
    used = 0;
    free = [||];
    nfree = 0;
    nslots;
    nvslots;
    vmap;
  }

(* Geometric growth keeps claiming amortized O(nslots); rows for
   chunks beyond [used] are garbage and never read. *)
let grow_chunks a =
  let cap = max 64 (2 * a.cap) in
  let copy width src fill =
    let dst = Array.make (cap * width) fill in
    Array.blit src 0 dst 0 (a.used * width);
    dst
  in
  a.res <- copy a.nslots a.res 0;
  a.vers <- copy a.nslots a.vers 0;
  a.exts <- copy a.nslots a.exts 0;
  a.vals <- copy a.nvslots a.vals Value.Unit;
  let cmax = Array.make cap 0 in
  Array.blit a.cmax 0 cmax 0 a.used;
  a.cmax <- cmax;
  a.cap <- cap

let release_values a =
  if a.nvslots > 0 && a.used > 0 then
    Array.fill a.vals 0 (a.used * a.nvslots) Value.Unit;
  a.used <- 0;
  a.nfree <- 0;
  a.idx_len <- -1

let reset a ~len =
  let n = len + 1 in
  if Array.length a.idx < n then
    a.idx <- Array.make (max n (2 * Array.length a.idx)) (-1)
  else Array.fill a.idx 0 (Array.length a.idx) (-1);
  release_values a;
  a.idx_len <- n

let alloc a pos =
  let c =
    if a.nfree > 0 then (
      a.nfree <- a.nfree - 1;
      a.free.(a.nfree))
    else (
      if a.used = a.cap then grow_chunks a;
      let c = a.used in
      a.used <- c + 1;
      c)
  in
  Array.fill a.res (c * a.nslots) a.nslots 0;
  a.cmax.(c) <- 0;
  a.idx.(pos) <- c;
  c

let free_chunk a c =
  if a.nvslots > 0 then Array.fill a.vals (c * a.nvslots) a.nvslots Value.Unit;
  if a.nfree = Array.length a.free then (
    let free = Array.make (max 64 (2 * a.nfree)) 0 in
    Array.blit a.free 0 free 0 a.nfree;
    a.free <- free);
  a.free.(a.nfree) <- c;
  a.nfree <- a.nfree + 1

let edit a ~start ~old_len ~new_len =
  let n = a.idx_len in
  let delta = new_len - old_len in
  let reused = ref 0 and relocated = ref 0 in
  (* Prefix [0, start): an entry survives iff its computation examined
     nothing past [start]; cmax skips the slot scan for whole chunks. *)
  for p = 0 to min (start - 1) (n - 1) do
    let c = a.idx.(p) in
    if c >= 0 then
      if p + a.cmax.(c) <= start then incr reused
      else begin
        let live = ref false and m = ref 0 in
        let base = c * a.nslots in
        for sl = 0 to a.nslots - 1 do
          if a.res.(base + sl) <> 0 then
            if p + a.exts.(base + sl) > start then begin
              a.res.(base + sl) <- 0;
              let v = a.vmap.(sl) in
              if v >= 0 then a.vals.((c * a.nvslots) + v) <- Value.Unit
            end
            else begin
              live := true;
              if a.exts.(base + sl) > !m then m := a.exts.(base + sl)
            end
        done;
        a.cmax.(c) <- !m;
        if !live then incr reused
        else begin
          a.idx.(p) <- -1;
          free_chunk a c
        end
      end
  done;
  (* Replaced region: those chunks cannot survive. *)
  let src = start + old_len in
  for p = start to min (src - 1) (n - 1) do
    let c = a.idx.(p) in
    if c >= 0 then begin
      free_chunk a c;
      a.idx.(p) <- -1
    end
  done;
  let n' = n + delta in
  if src < n then begin
    if delta > 0 && Array.length a.idx < n' then begin
      let idx = Array.make (max n' (2 * Array.length a.idx)) (-1) in
      Array.blit a.idx 0 idx 0 n;
      a.idx <- idx
    end;
    (* Array.blit handles the overlap (memmove), so shifting the whole
       suffix is one move regardless of direction. *)
    Array.blit a.idx src a.idx (src + delta) (n - src);
    (* The window covering the new text holds stale ids after a
       right-shift (the moved chunks' old homes); no chunk can be
       anchored inside replaced text, so clear it. *)
    Array.fill a.idx start new_len (-1);
    for p = src + delta to n' - 1 do
      if a.idx.(p) >= 0 then begin
        incr reused;
        if delta <> 0 then incr relocated
      end
    done;
    if delta < 0 then Array.fill a.idx n' (n - n') (-1)
  end;
  a.idx_len <- n';
  (!reused, !relocated)
