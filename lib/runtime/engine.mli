(** The packrat parsing engine.

    {!prepare} compiles a closed, well-formed grammar into a network of
    closures — one recognizer and one value-building matcher per
    production — with memoization wrappers, choice-dispatch tables and
    state-transaction handling chosen by the {!Config.t}. {!run} then
    parses an input string.

    When the configuration selects {!Config.Bytecode}, preparation
    instead compiles the grammar to a flat instruction array and [run]
    hands off to the {!Vm} interpreter; the whole API below works
    identically on both back ends. Tracing always uses closures (it
    hooks per-production invocations).

    The engine rejects grammars that fail {!Rats_peg.Analysis.check}
    (left recursion, vacuous repetition, dangling references), exactly as
    Rats! refuses to generate parsers for them.

    Stateful productions (those using [Record]/[Member]) are never
    memoized regardless of configuration: their outcome depends on the
    state tables, and Rats! likewise exempts stateful productions from
    memoization. State changes are transactional — rolled back when a
    choice alternative, repetition step or predicate backtracks. *)

open Rats_support
open Rats_peg

type t

val prepare : ?config:Config.t -> Grammar.t -> (t, Diagnostic.t list) result
(** Default config is {!Config.optimized}. *)

val prepare_exn : ?config:Config.t -> Grammar.t -> t
val config : t -> Config.t
val grammar : t -> Grammar.t

val memo_slots : t -> int
(** Number of productions that received a memo slot under this
    configuration — the chunk width of E5. *)

val memo_value_slots : t -> int
(** The subset of memo slots that carry a semantic value (the arena's
    vmap); enters {!Limits.chunk_cost}, so a value-free engine charges
    its memo budget less per position. *)

val arena_cap : t -> int
(** Chunks with backing rows in this engine's pooled memo arena
    (either back end) — the allocated high-water footprint, which
    survives between runs because parking a scratch releases values,
    not rows. [0] before the first run. The batch runner reports this
    as an occupancy gauge. *)

val bytecode : t -> Vm.t option
(** The compiled bytecode program when this engine runs on the
    {!Config.Bytecode} back end; [None] on the closure back end. *)

val observation : t -> Observe.t option
(** The observation sink created at preparation when
    {!Config.t.observe} enables any capability, on either back end;
    [None] otherwise. The sink accumulates across every run of this
    engine — coverage over a corpus is many runs into one sink. *)

type outcome = {
  result : (Value.t, Parse_error.t) result;
  stats : Stats.t;
  consumed : int;
      (** offset reached by the start production, or [-1] when it failed
          outright — lets callers do longest-prefix parsing with
          [~require_eof:false] *)
}

val run : t -> ?start:string -> ?require_eof:bool -> string -> outcome
(** [run t input] parses [input] from the start production ([start]
    overrides by flat production name). With [require_eof] (default
    [true]) the start production must consume the whole input. *)

val run_input : t -> ?start:string -> ?require_eof:bool -> Input.t -> outcome
(** {!run} over an {!Input.t} buffer — the general entry point on both
    back ends; [run] wraps the string case. A Bigarray-backed input
    (e.g. {!Input.map_file}) is parsed in place with no copy; results,
    [Stats], cost-model accounting and error reports are byte-identical
    across representations. *)

val parse : t -> ?start:string -> string -> (Value.t, Parse_error.t) result
val accepts : t -> ?start:string -> string -> bool

(** {1 Persistent memo stores}

    The machinery under [Rats.Session]: a store owns the memo structures
    of the last run so a later run over an edited buffer reuses every
    entry whose computation never looked at the damaged bytes. Entries
    record their {e examined extent} — the farthest input position their
    computation inspected, end-of-input checks included — which is what
    makes retention sound under lookahead predicates: an entry is kept
    only if everything it ever looked at is strictly before the damage,
    and entries at or past the damage end are relocated by the length
    delta (sound because a production never examines positions before
    its own start). Stateful productions rely on the state-version
    stamps instead: versions grow monotonically across a session's runs,
    so their old entries can never falsely hit. Reused entries re-count
    against {!Limits.t.max_memo_bytes} when the next run starts. *)

type store
(** A memo store tied to one engine and one evolving input buffer. *)

val new_store : t -> store
(** An empty store for this engine (matching its backend); populated by
    the first {!run_store}. *)

val edit_store : t -> store -> start:int -> old_len:int -> new_len:int -> int * int
(** [edit_store t s ~start ~old_len ~new_len] adjusts the store for a
    splice replacing [old_len] bytes at [start] with [new_len] bytes.
    Returns [(surviving, relocated)] entry counts — chunks under chunked
    memo, table entries otherwise; [relocated] counts only entries whose
    position actually moved, so same-length replacements relocate
    nothing. Raises [Invalid_argument] if the edit is out of bounds or
    the store belongs to the other backend. *)

val run_store : t -> store -> ?start:string -> ?require_eof:bool -> string -> outcome
(** Parse reading and refilling the store, in one untraced pass. On
    success the result is identical to a cold {!run} (values compare
    equal via [Value.equal]; spans inside reused subtrees are {e not}
    shifted — see DESIGN.md). On failure the expected set may be
    incomplete because memo hits hide part of the trace;
    [Rats.Session.reparse] re-parses cold in that case for exact error
    parity. *)

val run_store_input :
  t -> store -> ?start:string -> ?require_eof:bool -> Input.t -> outcome
(** {!run_store} over an {!Input.t} buffer. *)

(** {1 Tracing}

    Rats!'s verbose mode: watch the parser work, production by
    production. Tracing prepares its own engine (the normal one carries
    no per-invocation hooks, so tracing costs nothing when unused). *)

type trace_event = {
  prod : string;  (** production being tried *)
  at : int;  (** input offset *)
  depth : int;  (** invocation nesting depth *)
  outcome : int option;
      (** [None] on entry; [Some stop] on success (the new offset);
          [Some (-1)] on failure *)
}

val trace :
  ?config:Config.t ->
  ?start:string ->
  ?require_eof:bool ->
  on_event:(trace_event -> unit) ->
  Grammar.t ->
  string ->
  (outcome, Diagnostic.t list) result
(** [trace ~on_event g input] parses [input], calling [on_event] once on
    entry to every value-building production invocation and once on exit
    (memo hits included — they are invocations; recognizer-mode calls
    inside predicates under [lean_values] are not, so a non-lean
    [config] such as {!Config.packrat} gives the most complete view).
    Events of one invocation share [prod], [at] and [depth]. *)
