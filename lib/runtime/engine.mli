(** The packrat parsing engine.

    {!prepare} compiles a closed, well-formed grammar into a network of
    closures — one recognizer and one value-building matcher per
    production — with memoization wrappers, choice-dispatch tables and
    state-transaction handling chosen by the {!Config.t}. {!run} then
    parses an input string.

    When the configuration selects {!Config.Bytecode}, preparation
    instead compiles the grammar to a flat instruction array and [run]
    hands off to the {!Vm} interpreter; the whole API below works
    identically on both back ends. Tracing always uses closures (it
    hooks per-production invocations).

    The engine rejects grammars that fail {!Rats_peg.Analysis.check}
    (left recursion, vacuous repetition, dangling references), exactly as
    Rats! refuses to generate parsers for them.

    Stateful productions (those using [Record]/[Member]) are never
    memoized regardless of configuration: their outcome depends on the
    state tables, and Rats! likewise exempts stateful productions from
    memoization. State changes are transactional — rolled back when a
    choice alternative, repetition step or predicate backtracks. *)

open Rats_support
open Rats_peg

type t

val prepare : ?config:Config.t -> Grammar.t -> (t, Diagnostic.t list) result
(** Default config is {!Config.optimized}. *)

val prepare_exn : ?config:Config.t -> Grammar.t -> t
val config : t -> Config.t
val grammar : t -> Grammar.t

val memo_slots : t -> int
(** Number of productions that received a memo slot under this
    configuration — the chunk width of E5. *)

val bytecode : t -> Vm.t option
(** The compiled bytecode program when this engine runs on the
    {!Config.Bytecode} back end; [None] on the closure back end. *)

type outcome = {
  result : (Value.t, Parse_error.t) result;
  stats : Stats.t;
  consumed : int;
      (** offset reached by the start production, or [-1] when it failed
          outright — lets callers do longest-prefix parsing with
          [~require_eof:false] *)
}

val run : t -> ?start:string -> ?require_eof:bool -> string -> outcome
(** [run t input] parses [input] from the start production ([start]
    overrides by flat production name). With [require_eof] (default
    [true]) the start production must consume the whole input. *)

val parse : t -> ?start:string -> string -> (Value.t, Parse_error.t) result
val accepts : t -> ?start:string -> string -> bool

(** {1 Tracing}

    Rats!'s verbose mode: watch the parser work, production by
    production. Tracing prepares its own engine (the normal one carries
    no per-invocation hooks, so tracing costs nothing when unused). *)

type trace_event = {
  prod : string;  (** production being tried *)
  at : int;  (** input offset *)
  depth : int;  (** invocation nesting depth *)
  outcome : int option;
      (** [None] on entry; [Some stop] on success (the new offset);
          [Some (-1)] on failure *)
}

val trace :
  ?config:Config.t ->
  ?start:string ->
  ?require_eof:bool ->
  on_event:(trace_event -> unit) ->
  Grammar.t ->
  string ->
  (outcome, Diagnostic.t list) result
(** [trace ~on_event g input] parses [input], calling [on_event] once on
    entry to every value-building production invocation and once on exit
    (memo hits included — they are invocations; recognizer-mode calls
    inside predicates under [lean_values] are not, so a non-lean
    [config] such as {!Config.packrat} gives the most complete view).
    Events of one invocation share [prod], [at] and [depth]. *)
