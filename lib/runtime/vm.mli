(** The bytecode parsing back end.

    Where {!Engine} compiles a grammar into a network of OCaml closures,
    this module flattens it into a single instruction array — character
    classes become 256-byte bitmaps, choices become [choice]/[commit]
    pairs over an explicit backtrack stack, nonterminal calls become
    [call]/[ret] with the memoization lookup inlined at the call site —
    and interprets it in one tight dispatch loop. Failure pops the
    backtrack stack directly instead of unwinding OCaml closures with
    [-1] returns, so deep failing paths cost one stack pop per choice
    point rather than one return per IR node.

    Both back ends are observationally equivalent: same semantic values,
    same success offsets, same farthest-failure positions and expected
    sets (shared via {!Expected}). The closure engine remains the
    executable specification; the property suite cross-checks the two on
    randomized grammars. Select this back end with
    {!Config.Bytecode} — [Engine.prepare] dispatches on it, so most
    callers never use this module directly.

    Two counters beyond the closure engine's appear in {!Stats}:
    [vm_instructions] (instructions dispatched) and [vm_stack_peak] (the
    backtrack/call stack's high-water mark). *)

open Rats_support
open Rats_peg

type t
(** A compiled bytecode program. *)

val prepare : ?config:Config.t -> Grammar.t -> (t, Diagnostic.t list) result
(** Compile a closed, well-formed grammar. Default config is
    {!Config.vm}; the [backend] field is ignored here — preparing via
    this module always yields a bytecode program. Rejects grammars that
    fail {!Rats_peg.Analysis.check}, exactly like the closure engine. *)

val prepare_exn : ?config:Config.t -> Grammar.t -> t
val config : t -> Config.t
val grammar : t -> Grammar.t

val memo_slots : t -> int
(** Number of productions holding a memo slot under this configuration;
    identical to the closure engine's assignment. *)

val instruction_count : t -> int
(** Length of the compiled instruction array. *)

type outcome = {
  result : (Value.t, Parse_error.t) result;
  stats : Stats.t;
  consumed : int;
      (** offset reached by the start production, or [-1] when it failed
          outright *)
}

val run : t -> ?start:string -> ?require_eof:bool -> string -> outcome
(** Same contract as [Engine.run]. *)

val parse : t -> ?start:string -> string -> (Value.t, Parse_error.t) result
val accepts : t -> ?start:string -> string -> bool

val disassemble : t -> string
(** Human-readable listing of the program, one instruction per line,
    with production entry points labeled. *)
