(** The bytecode parsing back end.

    Where {!Engine} compiles a grammar into a network of OCaml closures,
    this module flattens it into a single instruction array — character
    classes become 256-byte bitmaps, choices become [choice]/[commit]
    pairs over an explicit backtrack stack, nonterminal calls become
    [call]/[ret] with the memoization lookup inlined at the call site —
    and interprets it in one tight dispatch loop. Failure pops the
    backtrack stack directly instead of unwinding OCaml closures with
    [-1] returns, so deep failing paths cost one stack pop per choice
    point rather than one return per IR node.

    Both back ends are observationally equivalent: same semantic values,
    same success offsets, same farthest-failure positions and expected
    sets (shared via {!Expected}). The closure engine remains the
    executable specification; the property suite cross-checks the two on
    randomized grammars. Select this back end with
    {!Config.Bytecode} — [Engine.prepare] dispatches on it, so most
    callers never use this module directly.

    Two counters beyond the closure engine's appear in {!Stats}:
    [vm_instructions] (instructions dispatched) and [vm_stack_peak] (the
    backtrack/call stack's high-water mark). *)

open Rats_support
open Rats_peg

type t
(** A compiled bytecode program. *)

val prepare : ?config:Config.t -> Grammar.t -> (t, Diagnostic.t list) result
(** Compile a closed, well-formed grammar. Default config is
    {!Config.vm}; the [backend] field is ignored here — preparing via
    this module always yields a bytecode program. Rejects grammars that
    fail {!Rats_peg.Analysis.check}, exactly like the closure engine. *)

val prepare_exn : ?config:Config.t -> Grammar.t -> t
val config : t -> Config.t
val grammar : t -> Grammar.t

val memo_slots : t -> int
(** Number of productions holding a memo slot under this configuration;
    identical to the closure engine's assignment. *)

val memo_value_slots : t -> int
(** Memo slots carrying a value; identical to the closure engine's
    vmap assignment. *)

val arena_cap : t -> int
(** Chunks with backing rows in the pooled memo arena — the arena's
    allocated high-water footprint, which survives between runs
    (parking a scratch releases values, not rows). [0] before the
    first run. *)

val instruction_count : t -> int
(** Length of the compiled instruction array. *)

val observation : t -> Observe.t option
(** The observation sink created at preparation when
    {!Config.t.observe} enables any capability; [None] otherwise. When
    set, the program was compiled with observed call/return instruction
    variants (visible in {!disassemble} as [obs-*]) and {!run} records
    in a single pass instead of the speculative-pass-plus-replay scheme,
    so ring events are not doubled. An unobserved program contains no
    [obs-*] instructions at all — the hot path is byte-identical to
    what an observation-free build would produce. *)

type outcome = {
  result : (Value.t, Parse_error.t) result;
  stats : Stats.t;
  consumed : int;
      (** offset reached by the start production, or [-1] when it failed
          outright *)
}

val run : t -> ?start:string -> ?require_eof:bool -> string -> outcome
(** Same contract as [Engine.run]. *)

val run_input : t -> ?start:string -> ?require_eof:bool -> Input.t -> outcome
(** {!run} over an {!Input.t} buffer — the general entry point; [run] is
    a wrapper over the string case. A Bigarray-backed input (e.g.
    {!Input.map_file}) is parsed in place with no copy; results, stats
    and error reports are byte-identical across representations. *)

(** {1 Persistent memo stores}

    The bytecode half of incremental sessions; see [Engine.new_store]
    for the full contract. [Rats.Session] drives these through the
    [Engine] facade — direct use is for tests. *)

type store
(** A memo store surviving across runs of one program over successive
    versions of one buffer. *)

val new_store : t -> store
(** An empty store for runs of this program; populated by the first
    {!run_store}. The store owns a {!Memo_arena} sized to the program's
    slot layout, recycled in place across reparses. *)

val edit_store :
  t -> store -> start:int -> old_len:int -> new_len:int -> int * int
(** [edit_store t s ~start ~old_len ~new_len] adjusts the store for a
    splice replacing [old_len] bytes at [start] with [new_len] bytes.
    Entries that never examined a byte at or past [start] are kept;
    entries at or past [start + old_len] are relocated by the length
    delta; the rest are dropped. Returns [(surviving, relocated)] entry
    counts — chunks under chunked memo, table entries otherwise.
    Raises [Invalid_argument] if the edit is out of bounds. *)

val run_store :
  t -> store -> ?start:string -> ?require_eof:bool -> string -> outcome
(** One untraced pass over [input] reading and refilling the store.
    Expected sets are not reconstructed (memo hits hide part of the
    trace); callers wanting exact error parity re-parse cold on
    failure, as [Rats.Session.reparse] does. *)

val run_store_input :
  t -> store -> ?start:string -> ?require_eof:bool -> Input.t -> outcome
(** {!run_store} over an {!Input.t} buffer. *)

val parse : t -> ?start:string -> string -> (Value.t, Parse_error.t) result
val accepts : t -> ?start:string -> string -> bool

val disassemble : t -> string
(** Human-readable listing of the program, one instruction per line,
    with production entry points labeled. *)
