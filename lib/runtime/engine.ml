open Rats_support
open Rats_peg
module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* --- run-time state ----------------------------------------------------- *)

(* Memo chunks (res encoding: 0 unset, -1 memoized failure, consumed+1
   memoized success, offsets relative to the chunk's position; vers =
   state-version stamps; exts = examined extents) live in a
   [Memo_arena.t] — flat parallel arrays recycled across runs instead
   of a boxed record per visited position. See memo_arena.mli for the
   layout and invariants. *)

type st = {
  input : Input.t;
  len : int;
  mutable value : Value.t;
  fail_trace : Expected.t;
  mutable tables : SSet.t SMap.t;  (* stateful-parsing tables *)
  mutable version : int;  (* bumped on every table change or rollback *)
  stats : Stats.t;
  table_memo : (int, int * Value.t * int * int) Hashtbl.t;
  (* key = pos * nslots + slot; value = (consumed or -1, value, version,
     examined extent) — offsets relative to pos, like chunk entries *)
  arena : Memo_arena.t;  (* chunk storage; a cold dummy when unused *)
  mutable examined : int;
  (* farthest input position the current memoized invocation has looked
     at; saved/reset at memoized entry, max-merged back at return *)
  (* resource governor; counts must match the VM exactly so both back
     ends trip the same limit on the same input *)
  mutable fuel : int;  (* remaining invocation budget, counts down *)
  mutable depth : int;  (* live invocation nesting *)
  mutable memo_bytes : int;  (* approximate memo storage charged so far *)
  mutable tripped : (Limits.which * int) option;
  mutable quiet : int;  (* predicate-body nesting; suppresses recording *)
}

(* Raised when a budget runs out; [st.tripped] carries which and where.
   Unlike ordinary failure (-1 returns) this aborts the whole run —
   backtracking into another alternative would keep burning the budget
   that is already gone. *)
exception Exhausted

type fn = st -> int -> int
(* Returns the new position, or -1 on failure. Value-building matchers
   additionally set [st.value]. *)

type scratch = {
  sc_arena : Memo_arena.t;
  sc_table : (int, int * Value.t * int * int) Hashtbl.t;
}
(* Memo storage for store-less runs, parked on the engine between runs
   so back-to-back parses reuse one arena and one bucket table instead
   of allocating fresh ones per parse. Parked scratch holds no values
   (cleared on release), so an idle engine retains no parse results. *)

type t = {
  cfg : Config.t;
  gram : Grammar.t;
  ids : (string, int) Hashtbl.t;
  full : fn array;  (* per-production value-building matchers *)
  recs : fn array;  (* per-production recognizers *)
  slots : int array;  (* memo slot per production; -1 = not memoized *)
  nslots : int;
  nvslots : int;  (* memo slots that carry a value *)
  vmap : int array;  (* memo slot -> arena value slot; -1 = value-free *)
  dummy_arena : Memo_arena.t;  (* cold placeholder for unmemoized runs *)
  mutable pool : scratch option;
  vm : Vm.t option;  (* the bytecode program, [Config.Bytecode] only *)
  obs : Observe.t option;
      (* observation sink, [Config.observe] enabled only; the VM carries
         its own — see [observation] *)
}

(* Failures inside a predicate body never reach the farthest-failure
   trace: a body failure is not a parse failure (for [!x] it means the
   predicate succeeds), and recording there would let a doomed
   alternative's lookahead push the reported position past bytes the
   parse never consumed — positions the FIRST-set dispatch optimization
   (which soundly skips such alternatives) can never reach. The
   predicate itself records at its entry position instead. *)
let record st pos desc =
  if st.quiet = 0 then Expected.record st.fail_trace pos desc

(* Note that position [p] was examined. Unlike [record] this is never
   suppressed inside predicates and never rewound on backtracking: an
   entry's outcome depends on every byte any of its alternatives or
   lookaheads inspected, including the end-of-input check (so [p] may
   equal [st.len]). *)
let look st p = if p > st.examined then st.examined <- p

(* Restore the state tables to a snapshot; a physical change bumps the
   version so that memo entries of stateful productions stop matching. *)
let restore_tables st saved =
  if st.tables != saved then (
    st.tables <- saved;
    st.version <- st.version + 1;
    st.stats.Stats.state_snapshots <- st.stats.Stats.state_snapshots + 1)

(* --- compilation -------------------------------------------------------- *)

(* Character classes and FIRST-set dispatch guards test one byte per
   visit, so they compile to 256-byte lookup tables (the VM does the
   same); [Charset.mem] on the four-word bit vector would box an Int64
   per probe. *)
let bitmap_of_charset set =
  let bm = Bytes.make 256 '\000' in
  Charset.iter (fun c -> Bytes.set bm (Char.code c) '\001') set;
  bm

let bitmap_mem bm c = Bytes.unsafe_get bm (Char.code c) <> '\000'

type compile_ctx = {
  parser : t;
  analysis : Analysis.t;
  config : Config.t;
  obs : Observe.t option;
      (* when set, choice compilation marks alternative coverage and
         pushes backtrack events; call instrumentation lives in the
         per-production wrappers of [prepare_hooked] instead *)
}

(* --- hoisted hot loops --------------------------------------------------- *)

(* The iteration of every composite matcher lives up here, as closed
   top-level functions, not as [let rec] loops inside the matcher
   closures: a local recursive function with free variables allocates
   its closure block on every invocation of the enclosing matcher,
   which on the lean (recognizer) path was the whole allocation —
   linear in input. A closed top-level function is statically
   allocated, so these loops cost nothing per call. *)

(* Longest prefix of [s] matching at [pos]; every inspected index is
   marked examined, including the mismatching one. *)
let rec str_scan st (s : string) n pos i =
  if i >= n then i
  else if
    (look st (pos + i);
     pos + i < st.len
     && Input.unsafe_get st.input (pos + i) = String.unsafe_get s i)
  then str_scan st s n pos (i + 1)
  else i

let rec seq_loop (fns : fn array) n st i pos =
  if i >= n then pos
  else
    let p = (Array.unsafe_get fns i) st pos in
    if p < 0 then -1 else seq_loop fns n st (i + 1) p

let rec star_loop (fx : fn) st pos =
  let saved = st.tables in
  let p = fx st pos in
  if p < 0 then (
    restore_tables st saved;
    pos)
  else if p = pos then pos (* no progress; stop to guarantee termination *)
  else star_loop fx st p

let rec star_collect (fx : fn) st pos acc =
  let saved = st.tables in
  let p = fx st pos in
  if p < 0 then (
    restore_tables st saved;
    st.value <- Value.List (List.rev acc);
    pos)
  else if p = pos then (
    st.value <- Value.List (List.rev acc);
    pos)
  else star_collect fx st p (st.value :: acc)

let alt_first_viable st pos (first : Bytes.t) eps =
  eps
  || (look st pos;
      pos < st.len && bitmap_mem first (Input.unsafe_get st.input pos))

let rec alt_loop (compiled : (fn * Bytes.t * bool * string) array) n dispatch
    st saved pos i =
  if i >= n then -1
  else
    let fn, first, eps, desc = Array.unsafe_get compiled i in
    if dispatch && not (alt_first_viable st pos first eps) then (
      record st pos desc;
      alt_loop compiled n dispatch st saved pos (i + 1))
    else
      let p = fn st pos in
      if p >= 0 then p
      else (
        restore_tables st saved;
        st.stats.Stats.backtracks <- st.stats.Stats.backtracks + 1;
        alt_loop compiled n dispatch st saved pos (i + 1))

let truncate_desc s =
  if String.length s <= 40 then s else String.sub s 0 37 ^ "..."

(* Expected-set description of a predicate body, identical to the VM's
   (which fuses one-byte bodies into test instructions carrying the
   matcher's own description). *)
let pred_body_desc (x : Expr.t) =
  match x.it with
  | Expr.Chr c -> Pretty.quote_char c
  | Expr.Cls set -> Charset.to_string set
  | Expr.Any -> "any character"
  | _ -> truncate_desc (Pretty.expr_to_string x)

(* Peel a top-level Bind to expose the label a sequence records. *)
let peel_bind (e : Expr.t) =
  match e.it with Expr.Bind (l, inner) -> (Some l, inner) | _ -> (None, e)

(* Sequence tails produced by [compile_tail] carry their parts in a node
   with this reserved name, so splicing never confuses "one value that
   happens to be a tuple" with "the parts of a tail". *)
let tail_name = "#tail"

let tail_parts = function
  | Value.Node n when String.equal n.Value.name tail_name -> n.Value.children
  | _ -> assert false

let rec compile ctx ~lean (e : Expr.t) : fn =
  match e.it with
  | Expr.Empty ->
      if lean then fun _ _pos -> _pos
      else
        fun st pos ->
        st.value <- Value.Unit;
        pos
  | Expr.Fail msg ->
      fun st pos ->
        record st pos msg;
        -1
  | Expr.Any ->
      let desc = "any character" in
      if lean then
        fun st pos ->
          look st pos;
          if pos < st.len then pos + 1
          else (
            record st pos desc;
            -1)
      else
        fun st pos ->
          look st pos;
          if pos < st.len then (
            st.value <- Value.Chr (Input.unsafe_get st.input pos);
            pos + 1)
          else (
            record st pos desc;
            -1)
  | Expr.Chr c ->
      let desc = Pretty.quote_char c in
      let set_unit = not lean in
      fun st pos ->
        look st pos;
        if pos < st.len && Input.unsafe_get st.input pos = c then (
          if set_unit then st.value <- Value.Unit;
          pos + 1)
        else (
          record st pos desc;
          -1)
  | Expr.Str s ->
      let n = String.length s in
      let desc = Pretty.quote_string s in
      let set_unit = not lean in
      fun st pos ->
        (* Record failures at the first mismatching byte, so the farthest
           position reflects how much of the literal matched. *)
        let m = str_scan st s n pos 0 in
        if m >= n then (
          if set_unit then st.value <- Value.Unit;
          pos + n)
        else (
          record st (pos + m) desc;
          -1)
  | Expr.Cls set ->
      let desc = Charset.to_string set in
      let bm = bitmap_of_charset set in
      if lean then
        fun st pos ->
          look st pos;
          if pos < st.len && bitmap_mem bm (Input.unsafe_get st.input pos)
          then pos + 1
          else (
            record st pos desc;
            -1)
      else
        fun st pos ->
          look st pos;
          if pos < st.len then (
            let c = Input.unsafe_get st.input pos in
            if bitmap_mem bm c then (
              st.value <- Value.Chr c;
              pos + 1)
            else (
              record st pos desc;
              -1))
          else (
            record st pos desc;
            -1)
  | Expr.Ref name ->
      let id =
        match Hashtbl.find_opt ctx.parser.ids name with
        | Some id -> id
        | None -> Diagnostic.failf "engine: undefined production %S" name
      in
      let fns = if lean then ctx.parser.recs else ctx.parser.full in
      fun st pos -> fns.(id) st pos
  | Expr.Seq es -> compile_seq ctx ~lean es
  | Expr.Alt alts -> compile_alt ctx ~lean alts
  | Expr.Star x ->
      if (not lean) && Analysis.expr_yields_unit ctx.analysis x then (
        let fx = compile_star ctx ~lean:true x in
        fun st pos ->
          let p = fx st pos in
          st.value <- Value.Unit;
          p)
      else compile_star ctx ~lean x
  | Expr.Plus x ->
      if (not lean) && Analysis.expr_yields_unit ctx.analysis x then (
        let one = compile ctx ~lean:true x in
        let star = compile_star ctx ~lean:true x in
        fun st pos ->
          let p = one st pos in
          if p < 0 then -1
          else (
            let p' = star st p in
            st.value <- Value.Unit;
            p'))
      else
        let star = compile_star ctx ~lean x in
        let one = compile ctx ~lean x in
        if lean then
          fun st pos ->
            let p = one st pos in
            if p < 0 then -1 else star st p
        else
          fun st pos ->
            let p = one st pos in
            if p < 0 then -1
            else
              let first = st.value in
              let p' = star st p in
              (* star in full mode always succeeds with a List *)
              (match st.value with
              | Value.List rest -> st.value <- Value.List (first :: rest)
              | _ -> st.value <- Value.List [ first ]);
              p'
  | Expr.Opt x ->
      let fx = compile ctx ~lean x in
      fun st pos ->
        let saved = st.tables in
        let p = fx st pos in
        if p >= 0 then p
        else (
          restore_tables st saved;
          if not lean then st.value <- Value.Unit;
          pos)
  | Expr.And x ->
      let fx = compile ctx ~lean:(lean || ctx.config.Config.lean_values) x in
      let desc = "&" ^ pred_body_desc x in
      fun st pos ->
        let saved = st.tables in
        st.quiet <- st.quiet + 1;
        let p = fx st pos in
        st.quiet <- st.quiet - 1;
        restore_tables st saved;
        if p < 0 then (
          record st pos desc;
          -1)
        else (
          if not lean then st.value <- Value.Unit;
          pos)
  | Expr.Not x ->
      let fx = compile ctx ~lean:(lean || ctx.config.Config.lean_values) x in
      let desc = "not " ^ truncate_desc (Pretty.expr_to_string x) in
      fun st pos ->
        let saved = st.tables in
        st.quiet <- st.quiet + 1;
        let p = fx st pos in
        st.quiet <- st.quiet - 1;
        restore_tables st saved;
        if p >= 0 then (
          record st pos desc;
          -1)
        else (
          if not lean then st.value <- Value.Unit;
          pos)
  | Expr.Bind (label, x) ->
      let fx = compile ctx ~lean x in
      if lean then fx
      else
        fun st pos ->
          let p = fx st pos in
          if p < 0 then -1
          else (
            st.value <- Value.seq [ (Some label, st.value) ];
            p)
  | Expr.Token x ->
      let fx = compile ctx ~lean:(lean || ctx.config.Config.lean_values) x in
      if lean then fx
      else
        fun st pos ->
          let p = fx st pos in
          if p < 0 then -1
          else (
            st.value <- Value.Str (Input.sub_string st.input pos (p - pos));
            p)
  | Expr.Node (name, x) ->
      let fx = compile ctx ~lean x in
      if lean then fx
      else
        fun st pos ->
          let p = fx st pos in
          if p < 0 then -1
          else (
            st.value <-
              Value.node ~span:(Span.v ~start_:pos ~stop:p) name
                (Value.components st.value);
            p)
  | Expr.Drop x ->
      let fx = compile ctx ~lean:(lean || ctx.config.Config.lean_values) x in
      if lean then fx
      else
        fun st pos ->
          let p = fx st pos in
          if p < 0 then -1
          else (
            st.value <- Value.Unit;
            p)
  | Expr.Splice x ->
      if lean then compile ctx ~lean:true x
      else
        (* Standalone splice: evaluate in tail mode, then collapse the
           parts exactly as a sequence value would. *)
        let fx = compile_tail ctx x in
        fun st pos ->
          let p = fx st pos in
          if p < 0 then -1
          else (
            st.value <- Value.seq (tail_parts st.value);
            p)
  | Expr.Record (table, x) ->
      let fx = compile ctx ~lean x in
      fun st pos ->
        let p = fx st pos in
        if p < 0 then -1
        else (
          let text = Input.sub_string st.input pos (p - pos) in
          let set =
            Option.value (SMap.find_opt table st.tables) ~default:SSet.empty
          in
          st.tables <- SMap.add table (SSet.add text set) st.tables;
          st.version <- st.version + 1;
          p)
  | Expr.Member (table, positive, x) ->
      let fx = compile ctx ~lean x in
      let desc =
        if positive then Printf.sprintf "a name recorded in %s" table
        else Printf.sprintf "a name not recorded in %s" table
      in
      fun st pos ->
        let p = fx st pos in
        if p < 0 then -1
        else
          let text = Input.sub_string st.input pos (p - pos) in
          let set =
            Option.value (SMap.find_opt table st.tables) ~default:SSet.empty
          in
          if SSet.mem text set = positive then p
          else (
            record st pos desc;
            -1)

and compile_seq ctx ~lean ?(tail = false) es =
  if lean then (
    let fns = Array.of_list (List.map (compile ctx ~lean:true) es) in
    let n = Array.length fns in
    fun st pos -> seq_loop fns n st 0 pos)
  else
    let general () =
    let parts =
      Array.of_list
        (List.map
           (fun (e : Expr.t) ->
             match e.it with
             | Expr.Splice inner -> (None, compile_tail ctx inner, true)
             | _ ->
                 let label, inner = peel_bind e in
                 (label, compile ctx ~lean:false inner, false))
           es)
    in
    let n = Array.length parts in
    let finish =
      if tail then fun st pos0 pos acc ->
        st.value <-
          Value.node ~span:(Span.v ~start_:pos0 ~stop:pos) tail_name
            (List.rev acc)
      else fun st pos0 pos acc ->
        st.value <-
          Value.seq ~span:(Span.v ~start_:pos0 ~stop:pos) (List.rev acc)
    in
    fun st pos0 ->
      let rec go i pos acc =
        if i >= n then (
          finish st pos0 pos acc;
          pos)
        else
          let label, fn, splice = parts.(i) in
          let p = fn st pos in
          if p < 0 then -1
          else
            let acc =
              if splice then List.rev_append (tail_parts st.value) acc
              else
                match (label, st.value) with
                | None, Value.Unit -> acc
                | _ -> (label, st.value) :: acc
            in
            go (i + 1) p acc
      in
      go 0 pos0 []
    in
    if
      tail
      || (not ctx.config.Config.lean_values)
      || List.exists
           (fun (e : Expr.t) ->
             match e.it with Expr.Splice _ -> true | _ -> false)
           es
    then general ()
    else
      (* [Value.seq] drops unlabeled unit parts and collapses a
         singleton to the part itself (lib/peg/value.ml), so a sequence
         with at most one value-bearing part needs no collection: the
         value register already carries the result — provided the parts
         after the value-bearing one leave the register alone. The VM's
         [emit_seq] makes the same decision from the same analysis, so
         both back ends run the same call sites in recognizer mode. *)
      let info =
        List.map
          (fun e ->
            let label, inner = peel_bind e in
            ( label,
              inner,
              label <> None
              || not (Analysis.expr_yields_unit ctx.analysis inner) ))
          es
      in
      let rec after_value = function
        | [] -> []
        | (_, _, true) :: rest -> List.map (fun (_, i, _) -> i) rest
        | _ :: rest -> after_value rest
      in
      let chain fns finish =
        let fns = Array.of_list fns in
        let n = Array.length fns in
        fun st pos ->
          let p = seq_loop fns n st 0 pos in
          if p < 0 then -1
          else (
            finish st;
            p)
      in
      match List.filter (fun (_, _, bearing) -> bearing) info with
      | [] ->
          chain
            (List.map (fun (_, inner, _) -> compile ctx ~lean:true inner) info)
            (fun st -> st.value <- Value.Unit)
      | [ (label, _, _) ]
        when List.for_all Analysis.preserves_value (after_value info) ->
          chain
            (List.map
               (fun (_, inner, bearing) ->
                 compile ctx ~lean:(not bearing) inner)
               info)
            (match label with
            | None -> fun _ -> ()
            | Some l ->
                fun st -> st.value <- Value.seq [ (Some l, st.value) ])
      | _ -> general ()

and compile_tail ctx (e : Expr.t) : fn =
  (* Compile [e] as a sequence tail: the value is always a [tail_name]
     node holding the labeled parts, with none of [Value.seq]'s
     collapsing. Produced only by the prefix-factoring optimizer. *)
  match e.it with
  | Expr.Alt alts -> compile_alt ctx ~lean:false ~tail:true alts
  | Expr.Seq es -> compile_seq ctx ~lean:false ~tail:true es
  | Expr.Empty ->
      fun st pos ->
        st.value <- Value.node tail_name [];
        pos
  | _ ->
      let label, inner = peel_bind e in
      let fx = compile ctx ~lean:false inner in
      fun st pos ->
        let p = fx st pos in
        if p < 0 then -1
        else (
          st.value <-
            Value.node ~span:(Span.v ~start_:pos ~stop:p) tail_name
              (match (label, st.value) with
              | None, Value.Unit -> []
              | _ -> [ (label, st.value) ]);
          p)

and compile_alt ctx ~lean ?(tail = false) alts =
  let dispatch = ctx.config.Config.dispatch in
  let compile_branch body =
    if tail then compile_tail ctx body else compile ctx ~lean body
  in
  let compiled =
    Array.of_list
      (List.map
         (fun (a : Expr.alt) ->
           let first, eps = Analysis.expr_first ctx.analysis a.body in
           let desc = Charset.to_string first in
           (compile_branch a.body, bitmap_of_charset first, eps, desc))
         alts)
  in
  let n = Array.length compiled in
  match ctx.obs with
  | Some o
    when (Observe.want o).Observe.coverage || (Observe.want o).Observe.events
    ->
      (* Instrumented twin of the closure below: marks per-alternative
         coverage and pushes backtrack events. Arms are identified by
         the physical [alts] node, so both compilations of a body agree
         on ids; -1 (an alternative list outside the registered
         grammar) makes the marks no-ops. Backtrack events fire only
         when a later alternative remains to resume — the same points
         where the VM pops a counting choice entry — even though the
         [backtracks] counter keeps including last-arm failures. *)
      let base = Provenance.arms_of (Observe.provenance o) alts in
      let arm i = if base < 0 then -1 else base + i in
      fun st pos ->
        let saved = st.tables in
        let rec go i =
          if i >= n then -1
          else
            let fn, first, eps, desc = compiled.(i) in
            if
              dispatch && (not eps)
              && (look st pos;
                  pos >= st.len
                  || not (bitmap_mem first (Input.unsafe_get st.input pos)))
            then (
              record st pos desc;
              go (i + 1))
            else (
              Observe.alt_tried o (arm i);
              let p = fn st pos in
              if p >= 0 then (
                Observe.alt_matched o (arm i);
                p)
              else (
                restore_tables st saved;
                st.stats.Stats.backtracks <- st.stats.Stats.backtracks + 1;
                if i < n - 1 then Observe.backtrack o pos;
                go (i + 1)))
        in
        go 0
  | _ -> fun st pos -> alt_loop compiled n dispatch st st.tables pos 0

and compile_star ctx ~lean x =
  (* A repetition over a statically void body collects no values and
     yields Unit — matching what a sequence would do with the units. *)
  let lean = lean || Analysis.expr_yields_unit ctx.analysis x in
  let fx = compile ctx ~lean x in
  if lean then fun st pos -> star_loop fx st pos
  else fun st pos -> star_collect fx st pos []

(* Shape a production's raw body value according to its kind. *)
let shape (p : Production.t) =
  match p.attrs.Attr.kind with
  | Attr.Plain -> fun st _pos0 _pos1 -> ignore st
  | Attr.Generic ->
      let name = p.name in
      fun st pos0 pos1 ->
        st.value <-
          Value.node
            ~span:(Span.v ~start_:pos0 ~stop:pos1)
            name
            (Value.components st.value)
  | Attr.Text ->
      fun st pos0 pos1 -> st.value <- Value.Str (Input.sub_string st.input pos0 (pos1 - pos0))
  | Attr.Void -> fun st _pos0 _pos1 -> st.value <- Value.Unit

(* --- preparation -------------------------------------------------------- *)

let assign_slots cfg prods =
  let next = ref 0 in
  let slots =
    Array.map
      (fun (p : Production.t) ->
        let memoizable =
          match cfg.Config.memo with
          | Config.No_memo -> false
          | Config.Hashtable | Config.Chunked -> (
              match p.attrs.Attr.memo with
              | Attr.Memo_always -> true
              | Attr.Memo_never -> not cfg.Config.honor_transient
              | Attr.Memo_auto -> true)
        in
        if memoizable then (
          let s = !next in
          incr next;
          s)
        else -1)
      prods
  in
  (slots, !next)

let prepare_hooked ?hook ?(config = Config.optimized) gram =
  let analysis = Analysis.analyze gram in
  match Analysis.check analysis with
  | _ :: _ as ds -> Error ds
  | [] ->
      let prods = Array.of_list (Grammar.productions gram) in
      let nprods = Array.length prods in
      let ids = Hashtbl.create (nprods * 2) in
      Array.iteri
        (fun i (p : Production.t) -> Hashtbl.replace ids p.name i)
        prods;
      let slots, nslots = assign_slots config prods in
      (* Value slots: a memoized production whose stored value is
         statically [Value.Unit] gets none — hits restore Unit instead
         of reading the arena. Must mirror the VM's assignment exactly
         (same analysis, same production order) so stores are
         interchangeable in equivalence arguments. *)
      let vmap = Array.make nslots (-1) in
      let nvslots = ref 0 in
      Array.iteri
        (fun i (p : Production.t) ->
          let s = slots.(i) in
          if s >= 0 && not (Analysis.stores_no_value analysis p) then (
            vmap.(s) <- !nvslots;
            incr nvslots))
        prods;
      let nvslots = !nvslots in
      let dummy : fn = fun _ _ -> -1 in
      let obs =
        if Observe.enabled config.Config.observe then
          Some (Observe.create config.Config.observe (Provenance.of_grammar gram))
        else None
      in
      let parser =
        {
          cfg = config;
          gram;
          ids;
          full = Array.make nprods dummy;
          recs = Array.make nprods dummy;
          slots;
          nslots;
          nvslots;
          vmap;
          dummy_arena = Memo_arena.create ~nslots:0 ~vmap:[||];
          pool = None;
          vm = None;
          obs;
        }
      in
      let ctx = { parser; analysis; config; obs } in
      (* Governor hooks, always compiled in: unlimited budgets are
         [max_int] sentinels, so the ungoverned path costs one decrement
         and two compares per invocation. Fuel is charged once per
         invocation before the memo lookup; depth is entered only when a
         body actually runs (a memo hit does not nest) — the VM charges
         at exactly the same points. *)
      let limits = config.Config.limits in
      let max_depth = limits.Limits.max_depth in
      let memo_limit = limits.Limits.max_memo_bytes in
      let chunk_cost = Limits.chunk_cost ~value_slots:nvslots nslots in
      let charge st pos =
        st.fuel <- st.fuel - 1;
        if st.fuel < 0 then (
          st.tripped <- Some (Limits.Fuel, pos);
          raise Exhausted)
      in
      let enter st pos =
        if st.depth >= max_depth then (
          st.tripped <- Some (Limits.Depth, pos);
          raise Exhausted);
        st.depth <- st.depth + 1
      in
      (try
         Array.iteri
           (fun i (p : Production.t) ->
             let lean_body =
               config.Config.lean_values
               && (p.attrs.Attr.kind = Attr.Text
                  || p.attrs.Attr.kind = Attr.Void)
             in
             let body_full = compile ctx ~lean:lean_body p.expr in
             let body_rec = compile ctx ~lean:true p.expr in
             let shape_fn = shape p in
             let slot = slots.(i) in
             (* Memo entries of stateful productions are only valid at the
                state version they were computed at. A hit can therefore
                never hide a state change: any run that mutated the tables
                bumped the version past its own entry stamp. *)
             let stateful = Analysis.stateful analysis p.name in
             let full_fn =
               match (config.Config.memo, slot) with
               | Config.No_memo, _ | _, -1 ->
                   fun st pos ->
                     st.stats.Stats.invocations <-
                       st.stats.Stats.invocations + 1;
                     charge st pos;
                     enter st pos;
                     let p' = body_full st pos in
                     st.depth <- st.depth - 1;
                     if p' >= 0 then shape_fn st pos p';
                     p'
               | Config.Hashtable, slot ->
                   fun st pos ->
                     st.stats.Stats.invocations <-
                       st.stats.Stats.invocations + 1;
                     charge st pos;
                     let key = (pos * nslots) + slot in
                     (match Hashtbl.find_opt st.table_memo key with
                     | Some (r, v, ver, ext)
                       when (not stateful) || ver = st.version ->
                         st.stats.Stats.memo_hits <-
                           st.stats.Stats.memo_hits + 1;
                         look st (pos + ext - 1);
                         if r >= 0 then (
                           st.value <- v;
                           pos + r)
                         else -1
                     | _ ->
                         st.stats.Stats.memo_misses <-
                           st.stats.Stats.memo_misses + 1;
                         enter st pos;
                         let ver0 = st.version in
                         let saved_ext = st.examined in
                         st.examined <- pos - 1;
                         let p' = body_full st pos in
                         st.depth <- st.depth - 1;
                         if p' >= 0 then shape_fn st pos p';
                         if
                           st.memo_bytes + Limits.table_entry_cost
                           > memo_limit
                         then
                           st.stats.Stats.memo_degraded <-
                             st.stats.Stats.memo_degraded + 1
                         else (
                           st.memo_bytes <-
                             st.memo_bytes + Limits.table_entry_cost;
                           Hashtbl.replace st.table_memo key
                             ( (if p' >= 0 then p' - pos else -1),
                               (if p' >= 0 then st.value else Value.Unit),
                               ver0,
                               st.examined - pos + 1 );
                           st.stats.Stats.memo_stores <-
                             st.stats.Stats.memo_stores + 1);
                         look st saved_ext;
                         p')
               | Config.Chunked, slot ->
                   let vslot = vmap.(slot) in
                   fun st pos ->
                     st.stats.Stats.invocations <-
                       st.stats.Stats.invocations + 1;
                     charge st pos;
                     let a = st.arena in
                     let c =
                       let c = a.Memo_arena.idx.(pos) in
                       if c >= 0 then c
                       else if st.memo_bytes + chunk_cost > memo_limit then
                         -1
                       else (
                         let c = Memo_arena.alloc a pos in
                         st.memo_bytes <- st.memo_bytes + chunk_cost;
                         st.stats.Stats.chunks_allocated <-
                           st.stats.Stats.chunks_allocated + 1;
                         st.stats.Stats.chunk_slots <-
                           st.stats.Stats.chunk_slots + nslots;
                         c)
                     in
                     if c >= 0 then (
                       let base = (c * nslots) + slot in
                       let r = a.Memo_arena.res.(base) in
                       if
                         r <> 0
                         && ((not stateful)
                            || a.Memo_arena.vers.(base) = st.version)
                       then (
                         st.stats.Stats.memo_hits <-
                           st.stats.Stats.memo_hits + 1;
                         look st (pos + a.Memo_arena.exts.(base) - 1);
                         if r > 0 then (
                           st.value <-
                             (if vslot >= 0 then
                                a.Memo_arena.vals.((c * nvslots) + vslot)
                              else Value.Unit);
                           pos + r - 1)
                         else -1)
                       else (
                         st.stats.Stats.memo_misses <-
                           st.stats.Stats.memo_misses + 1;
                         enter st pos;
                         let ver0 = st.version in
                         let saved_ext = st.examined in
                         st.examined <- pos - 1;
                         let p' = body_full st pos in
                         st.depth <- st.depth - 1;
                         (* the body may have grown the arena: re-read
                            the rows through [a], never cache them *)
                         if p' >= 0 then (
                           shape_fn st pos p';
                           a.Memo_arena.res.(base) <- p' - pos + 1;
                           if vslot >= 0 then
                             a.Memo_arena.vals.((c * nvslots) + vslot) <-
                               st.value)
                         else a.Memo_arena.res.(base) <- -1;
                         a.Memo_arena.vers.(base) <- ver0;
                         let ext = st.examined - pos + 1 in
                         a.Memo_arena.exts.(base) <- ext;
                         if ext > a.Memo_arena.cmax.(c) then
                           a.Memo_arena.cmax.(c) <- ext;
                         st.stats.Stats.memo_stores <-
                           st.stats.Stats.memo_stores + 1;
                         look st saved_ext;
                         p'))
                     else (
                       (* memo budget exhausted: no chunk for this
                          position — parse un-memoized and move on *)
                       st.stats.Stats.memo_misses <-
                         st.stats.Stats.memo_misses + 1;
                       enter st pos;
                       let p' = body_full st pos in
                       st.depth <- st.depth - 1;
                       if p' >= 0 then shape_fn st pos p';
                       st.stats.Stats.memo_degraded <-
                         st.stats.Stats.memo_degraded + 1;
                       p')
             in
             let rec_fn =
               match (config.Config.memo, slot) with
               | Config.No_memo, _ | _, -1 ->
                   fun st pos ->
                     st.stats.Stats.invocations <-
                       st.stats.Stats.invocations + 1;
                     charge st pos;
                     enter st pos;
                     let p' = body_rec st pos in
                     st.depth <- st.depth - 1;
                     p'
               | Config.Hashtable, slot ->
                   fun st pos ->
                     st.stats.Stats.invocations <-
                       st.stats.Stats.invocations + 1;
                     charge st pos;
                     let key = (pos * nslots) + slot in
                     (match Hashtbl.find_opt st.table_memo key with
                     | Some (r, _, ver, ext)
                       when (not stateful) || ver = st.version ->
                         st.stats.Stats.memo_hits <-
                           st.stats.Stats.memo_hits + 1;
                         look st (pos + ext - 1);
                         if r >= 0 then pos + r else -1
                     | _ ->
                         enter st pos;
                         let p' = body_rec st pos in
                         st.depth <- st.depth - 1;
                         p')
               | Config.Chunked, slot when vmap.(slot) < 0 ->
                   (* A value-free slot stores nothing but the result,
                      so an entry written by a recognizer run is
                      indistinguishable from a full-mode one — lean
                      calls to these productions get the whole memo
                      protocol, allocation and stores included. The VM
                      makes the identical decision off the same vmap so
                      the tables keep evolving in lockstep. *)
                   fun st pos ->
                     st.stats.Stats.invocations <-
                       st.stats.Stats.invocations + 1;
                     charge st pos;
                     let a = st.arena in
                     let c =
                       let c = a.Memo_arena.idx.(pos) in
                       if c >= 0 then c
                       else if st.memo_bytes + chunk_cost > memo_limit then
                         -1
                       else (
                         let c = Memo_arena.alloc a pos in
                         st.memo_bytes <- st.memo_bytes + chunk_cost;
                         st.stats.Stats.chunks_allocated <-
                           st.stats.Stats.chunks_allocated + 1;
                         st.stats.Stats.chunk_slots <-
                           st.stats.Stats.chunk_slots + nslots;
                         c)
                     in
                     if c >= 0 then (
                       let base = (c * nslots) + slot in
                       let r = a.Memo_arena.res.(base) in
                       if
                         r <> 0
                         && ((not stateful)
                            || a.Memo_arena.vers.(base) = st.version)
                       then (
                         st.stats.Stats.memo_hits <-
                           st.stats.Stats.memo_hits + 1;
                         look st (pos + a.Memo_arena.exts.(base) - 1);
                         if r > 0 then pos + r - 1 else -1)
                       else (
                         st.stats.Stats.memo_misses <-
                           st.stats.Stats.memo_misses + 1;
                         enter st pos;
                         let ver0 = st.version in
                         let saved_ext = st.examined in
                         st.examined <- pos - 1;
                         let p' = body_rec st pos in
                         st.depth <- st.depth - 1;
                         (if p' >= 0 then
                            a.Memo_arena.res.(base) <- p' - pos + 1
                          else a.Memo_arena.res.(base) <- -1);
                         a.Memo_arena.vers.(base) <- ver0;
                         let ext = st.examined - pos + 1 in
                         a.Memo_arena.exts.(base) <- ext;
                         if ext > a.Memo_arena.cmax.(c) then
                           a.Memo_arena.cmax.(c) <- ext;
                         st.stats.Stats.memo_stores <-
                           st.stats.Stats.memo_stores + 1;
                         look st saved_ext;
                         p'))
                     else (
                       st.stats.Stats.memo_misses <-
                         st.stats.Stats.memo_misses + 1;
                       enter st pos;
                       let p' = body_rec st pos in
                       st.depth <- st.depth - 1;
                       st.stats.Stats.memo_degraded <-
                         st.stats.Stats.memo_degraded + 1;
                       p')
               | Config.Chunked, slot ->
                   fun st pos ->
                     st.stats.Stats.invocations <-
                       st.stats.Stats.invocations + 1;
                     charge st pos;
                     let a = st.arena in
                     let c = a.Memo_arena.idx.(pos) in
                     let base = if c >= 0 then (c * nslots) + slot else 0 in
                     if
                       c >= 0
                       && a.Memo_arena.res.(base) <> 0
                       && ((not stateful)
                          || a.Memo_arena.vers.(base) = st.version)
                     then (
                       st.stats.Stats.memo_hits <-
                         st.stats.Stats.memo_hits + 1;
                       look st (pos + a.Memo_arena.exts.(base) - 1);
                       let r = a.Memo_arena.res.(base) in
                       if r > 0 then pos + r - 1 else -1)
                     else (
                       enter st pos;
                       let p' = body_rec st pos in
                       st.depth <- st.depth - 1;
                       p')
             in
             (* Observation wrapper, around both the value-building and
                the recognizer entry. A call was a memo hit exactly when
                the inner call bumped [memo_hits] without running a body
                — detected as a counter delta so the nine memo/entry
                arms above stay untouched. The enter event precedes the
                inner call's fuel charge (mirroring the VM's observed
                call instructions), so a fuel trip leaves the doomed
                invocation visible in the ring; its open profile frame
                is closed by [Observe.finalize] at the run epilogue. *)
             let wrap_obs o i (fn : fn) : fn =
              fun st pos ->
               Observe.enter o i pos;
               let stats = st.stats in
               let inv0 = stats.Stats.invocations
               and hit0 = stats.Stats.memo_hits in
               let p' = fn st pos in
               if
                 stats.Stats.memo_hits = hit0 + 1
                 && stats.Stats.invocations = inv0 + 1
               then Observe.memo_hit o i pos ~stop:p'
               else Observe.exit o i pos ~stop:p';
               p'
             in
             let full_fn, rec_fn =
               match obs with
               | None -> (full_fn, rec_fn)
               | Some o -> (wrap_obs o i full_fn, wrap_obs o i rec_fn)
             in
             let full_fn =
               match hook with
               | None -> full_fn
               | Some h -> h p.Production.name full_fn
             in
             parser.full.(i) <- full_fn;
             parser.recs.(i) <- rec_fn)
           prods;
         Ok parser
       with Diagnostic.Fail d -> Error [ d ])

(* The bytecode back end reuses the engine's front door: a [t] whose
   closure tables are empty and whose program lives in [vm]. Hooked
   (traced) engines always run on closures. *)
let prepare ?(config = Config.optimized) gram =
  match config.Config.backend with
  | Config.Closure -> prepare_hooked ~config gram
  | Config.Bytecode -> (
      match Vm.prepare ~config gram with
      | Error ds -> Error ds
      | Ok vm ->
          Ok
            {
              cfg = config;
              gram;
              ids = Hashtbl.create 1;
              full = [||];
              recs = [||];
              slots = [||];
              vmap = [||];
              dummy_arena = Memo_arena.create ~nslots:0 ~vmap:[||];
              pool = None;
              nslots = Vm.memo_slots vm;
              nvslots = Vm.memo_value_slots vm;
              vm = Some vm;
              obs = None;
            })

let prepare_exn ?config gram =
  match prepare ?config gram with
  | Ok t -> t
  | Error (d :: _) -> raise (Diagnostic.Fail d)
  | Error [] -> assert false

let config t = t.cfg
let grammar t = t.gram
let memo_slots t = t.nslots
let memo_value_slots t = t.nvslots
let bytecode t = t.vm

let arena_cap t =
  match t.vm with
  | Some vm -> Vm.arena_cap vm
  | None -> (
      match t.pool with
      | Some sc -> sc.sc_arena.Memo_arena.cap
      | None -> 0)

let observation t =
  match t.vm with Some vm -> Vm.observation vm | None -> t.obs

(* --- running ------------------------------------------------------------ *)

type outcome = {
  result : (Value.t, Parse_error.t) result;
  stats : Stats.t;
  consumed : int;
}

(* --- persistent memo stores (incremental sessions) ----------------------- *)

(* A closure-engine store keeps the memo structures of the last run so a
   later run over an edited buffer can reuse them. [c_len] is the input
   length the entries were computed against (-1 until the first run);
   [c_version] persists the state-version counter across runs so stale
   stateful entries can never stamp-match a later run's versions. *)
type cstore = {
  c_arena : Memo_arena.t;
  c_table : (int, int * Value.t * int * int) Hashtbl.t;
  mutable c_bytes : int;
  mutable c_len : int;
  mutable c_version : int;
}

type store = Closure_store of cstore | Vm_store of Vm.store

(* Apply an edit to the store: entries that only examined bytes strictly
   before the damage are kept in place, entries at or past its end are
   relocated by the length delta, everything else is dropped. Offsets
   inside entries are position-relative, so relocation moves pointers
   without rewriting entry contents. Returns (surviving, relocated)
   entry counts — chunks for chunked memo, table entries otherwise. *)
let edit_cstore t (s : cstore) ~start ~old_len ~new_len =
  let reused = ref 0 and relocated = ref 0 in
  if s.c_len >= 0 then (
    if start < 0 || old_len < 0 || new_len < 0 || start + old_len > s.c_len
    then invalid_arg "Engine.edit_store: edit out of bounds";
    let delta = new_len - old_len in
    (match t.cfg.Config.memo with
    | Config.No_memo -> ()
    | Config.Chunked ->
        (* entries strictly before the damage survive if they looked at
           nothing damaged; entries at or past its end relocate by the
           delta (relative encodings make that a pure re-index); the
           rest are reclaimed into the arena's free list *)
        let r, l = Memo_arena.edit s.c_arena ~start ~old_len ~new_len in
        reused := r;
        relocated := l;
        s.c_bytes <- r * Limits.chunk_cost ~value_slots:t.nvslots t.nslots
    | Config.Hashtable ->
        if t.nslots > 0 then (
          let entries =
            Hashtbl.fold (fun k e acc -> (k, e) :: acc) s.c_table []
          in
          Hashtbl.reset s.c_table;
          let dmg = start + old_len in
          List.iter
            (fun (key, ((_, _, _, ext) as e)) ->
              let pos = key / t.nslots in
              if pos < start && pos + ext <= start then (
                Hashtbl.replace s.c_table key e;
                incr reused)
              else if pos >= dmg then (
                Hashtbl.replace s.c_table (key + (delta * t.nslots)) e;
                incr reused;
                if delta <> 0 then incr relocated))
            entries;
          s.c_bytes <-
            Hashtbl.length s.c_table * Limits.table_entry_cost));
    s.c_len <- s.c_len + delta);
  (!reused, !relocated)

let run_closures t ?store ?start ~require_eof input =
  let start_id =
    match start with
    | None -> Hashtbl.find t.ids (Grammar.start t.gram)
    | Some name -> (
        match Hashtbl.find_opt t.ids name with
        | Some id -> id
        | None ->
            raise
              (Diagnostic.Fail
                 (Diagnostic.errorf "no production named %S" name)))
  in
  let limits = t.cfg.Config.limits in
  if Input.length input > limits.Limits.max_input_bytes then (
    (match t.obs with
    | Some o -> Observe.trip o Limits.Input limits.Limits.max_input_bytes
    | None -> ());
    {
      result =
        Error
          (Parse_error.resource_exhausted ~which:Limits.Input
             ~at:limits.Limits.max_input_bytes ~consumed:0 ());
      stats = Stats.create ();
      consumed = -1;
    })
  else
    let len = Input.length input in
    (* Sync a persistent store to this input: entries only carry over
       when the store was edited to exactly this length (Session does
       that); any mismatch resets it rather than risking stale hits. *)
    (match store with
    | None -> ()
    | Some s ->
        let usable =
          s.c_len = len
          &&
          match t.cfg.Config.memo with
          | Config.Chunked -> s.c_arena.Memo_arena.idx_len = len + 1
          | _ -> true
        in
        if not usable then (
          Hashtbl.reset s.c_table;
          (match t.cfg.Config.memo with
          | Config.Chunked -> Memo_arena.reset s.c_arena ~len
          | _ -> ());
          s.c_bytes <- 0;
          s.c_len <- len));
    (* Store-less memoized runs borrow the engine's parked scratch (or
       build one on first use / when re-entered concurrently). *)
    let scratch =
      match store with
      | Some _ -> None
      | None -> (
          match t.cfg.Config.memo with
          | Config.No_memo -> None
          | Config.Hashtable | Config.Chunked ->
              let sc =
                match t.pool with
                | Some sc ->
                    t.pool <- None;
                    sc
                | None ->
                    {
                      sc_arena =
                        Memo_arena.create ~nslots:t.nslots ~vmap:t.vmap;
                      sc_table = Hashtbl.create 1024;
                    }
              in
              (match t.cfg.Config.memo with
              | Config.Chunked -> Memo_arena.reset sc.sc_arena ~len
              | _ -> Hashtbl.clear sc.sc_table);
              Some sc)
    in
    let st =
      {
        input;
        len;
        value = Value.Unit;
        fail_trace = Expected.create ();
        tables = SMap.empty;
        version = (match store with Some s -> s.c_version + 1 | None -> 0);
        stats = Stats.create ();
        table_memo =
          (match (store, scratch) with
          | Some s, _ -> s.c_table
          | None, Some sc -> sc.sc_table
          | None, None -> Hashtbl.create 1);
        arena =
          (match (store, scratch) with
          | Some s, _ -> s.c_arena
          | None, Some sc -> sc.sc_arena
          | None, None -> t.dummy_arena);
        examined = -1;
        fuel = limits.Limits.fuel;
        depth = 0;
        memo_bytes = (match store with Some s -> s.c_bytes | None -> 0);
        tripped = None;
        quiet = 0;
      }
    in
    let p =
      try t.full.(start_id) st 0 with
      | Exhausted -> -1
      | Stack_overflow ->
          (* last-resort backstop: an ungoverned (or under-governed) run
             hit the OS stack before any depth budget *)
          st.tripped <-
            Some (Limits.Depth, max (Expected.farthest st.fail_trace) 0);
          -1
      | Out_of_memory ->
          st.tripped <-
            Some (Limits.Memory, max (Expected.farthest st.fail_trace) 0);
          -1
    in
    (* clamp: a fuel trip leaves st.fuel at -1; report the budget, not
       budget + 1 *)
    st.stats.Stats.fuel_used <- limits.Limits.fuel - max st.fuel 0;
    (match store with
    | None -> ()
    | Some s ->
        s.c_bytes <- st.memo_bytes;
        s.c_version <- st.version);
    (* Park the scratch for the next run, minus any parse results: the
       final value lives in [st.value], so dropping the memo's value
       references here costs nothing observable. *)
    (match scratch with
    | None -> ()
    | Some sc ->
        (match t.cfg.Config.memo with
        | Config.Chunked -> Memo_arena.release_values sc.sc_arena
        | _ -> ());
        Hashtbl.clear sc.sc_table;
        t.pool <- Some sc);
    (* The trip event and frame cleanup happen after the run body, off
       any budget: the ring must describe an exhausted run without
       changing where it tripped. *)
    (match t.obs with
    | None -> ()
    | Some o ->
        (match st.tripped with
        | Some (which, at) -> Observe.trip o which at
        | None -> ());
        Observe.finalize o);
    let result =
      match st.tripped with
      | Some (which, at) -> Error (Expected.exhausted st.fail_trace ~which ~at)
      | None ->
          Expected.result st.fail_trace ~len:st.len ~require_eof ~stop:p
            st.value
    in
    { result; stats = st.stats; consumed = p }

let run_input t ?start ?(require_eof = true) input =
  match t.vm with
  | Some vm ->
      let o = Vm.run_input vm ?start ~require_eof input in
      { result = o.Vm.result; stats = o.Vm.stats; consumed = o.Vm.consumed }
  | None -> run_closures t ?start ~require_eof input

let run t ?start ?require_eof input =
  run_input t ?start ?require_eof (Input.of_string input)

let parse t ?start input = (run t ?start input).result
let accepts t ?start input = Result.is_ok (parse t ?start input)

let new_store t =
  match t.vm with
  | Some vm -> Vm_store (Vm.new_store vm)
  | None ->
      Closure_store
        {
          c_arena = Memo_arena.create ~nslots:t.nslots ~vmap:t.vmap;
          c_table = Hashtbl.create 256;
          c_bytes = 0;
          c_len = -1;
          c_version = 0;
        }

let edit_store t store ~start ~old_len ~new_len =
  match (store, t.vm) with
  | Vm_store s, Some vm -> Vm.edit_store vm s ~start ~old_len ~new_len
  | Closure_store s, None -> edit_cstore t s ~start ~old_len ~new_len
  | _ -> invalid_arg "Engine.edit_store: store belongs to a different backend"

let run_store_input t store ?start ?(require_eof = true) input =
  match (store, t.vm) with
  | Vm_store s, Some vm ->
      let o = Vm.run_store_input vm s ?start ~require_eof input in
      { result = o.Vm.result; stats = o.Vm.stats; consumed = o.Vm.consumed }
  | Closure_store s, None -> run_closures t ~store:s ?start ~require_eof input
  | _ -> invalid_arg "Engine.run_store: store belongs to a different backend"

let run_store t store ?start ?require_eof input =
  run_store_input t store ?start ?require_eof (Input.of_string input)

(* --- tracing -------------------------------------------------------------- *)

type trace_event = {
  prod : string;
  at : int;
  depth : int;
  outcome : int option;
}

let trace ?config ?start ?require_eof ~on_event gram input =
  let depth = ref 0 in
  let hook name fn : fn =
   fun st pos ->
    on_event { prod = name; at = pos; depth = !depth; outcome = None };
    incr depth;
    let p = fn st pos in
    decr depth;
    on_event { prod = name; at = pos; depth = !depth; outcome = Some p };
    p
  in
  match prepare_hooked ~hook ?config gram with
  | Error ds -> Error ds
  | Ok eng -> Ok (run eng ?start ?require_eof input)
