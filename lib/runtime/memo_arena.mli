(** Reusable storage arena for packrat memo chunks.

    Both back ends memoize with one {e chunk} per visited input
    position holding one entry per memoized production ([nslots] of
    them). The arena owns all chunk storage as flat parallel arrays —
    [res]/[vers]/[exts] rows of [nslots] ints per chunk plus a [vals]
    row of [nvslots] values — indexed by an [idx] table mapping input
    position to chunk id. Chunks are recycled through a free list and
    the whole arena is recycled across runs ({!reset}) and across
    session reparses ({!edit}), so the steady-state hot path allocates
    nothing: claiming a chunk is a row clear, not four [Array.make]s.

    Value slots are separate from int slots: productions whose stored
    value is statically [Value.Unit] (see [Analysis.stores_no_value])
    get no [vals] cell at all — [vmap] maps an int slot to its value
    slot, [-1] when the production is value-free. On recognizer-heavy
    grammars this roughly halves chunk footprint.

    The arena is storage only. Budget accounting, statistics, and the
    [Limits.chunk_cost] model stay in the engines, which charge exactly
    as they did when chunks were individually heap-allocated — the
    governor's cost model is part of the observable contract and does
    not track the arena's actual (smaller, amortized) footprint.

    The record is exposed so the interpreters' hot paths can index the
    arrays directly. Invariants: [idx.(p)] is [-1] or a chunk id [c]
    with [c * nslots] valid in [res]/[vers]/[exts]; a claimed chunk's
    [res] row is all zero until entries are stored; [vers]/[exts] cells
    are garbage wherever [res] is 0. The arrays may be replaced on
    growth — re-read them after any {!alloc}. *)

open Rats_peg

type t = {
  mutable idx : int array;  (* input position -> chunk id, -1 = none *)
  mutable idx_len : int;  (* positions indexed (input len + 1); -1 = cold *)
  mutable res : int array;  (* chunk * nslots + slot *)
  mutable vers : int array;
  mutable exts : int array;
  mutable cmax : int array;  (* per chunk: max stored ext, 0 when empty *)
  mutable vals : Value.t array;  (* chunk * nvslots + vslot *)
  mutable cap : int;  (* chunks with backing rows *)
  mutable used : int;  (* chunks ever claimed since last reset *)
  mutable free : int array;  (* recycled chunk ids *)
  mutable nfree : int;
  nslots : int;
  nvslots : int;
  vmap : int array;  (* slot -> value slot, -1 = value-free production *)
}

val create : nslots:int -> vmap:int array -> t
(** An empty arena for chunks of [nslots] entries. [vmap] must have
    length [nslots] and assign value slots densely in slot order;
    {!create} derives [nvslots] from it. *)

val reset : t -> len:int -> unit
(** Make the arena cold for an input of [len] bytes: every position in
    [0..len] maps to no chunk, every chunk is reclaimable, and values
    from the previous run are released. O(len + live chunks). *)

val release_values : t -> unit
(** Drop all [Value.t] references and mark the arena cold, so a pooled
    arena parked between runs retains no parse results. Cheaper than
    {!reset} (no [idx] fill); the next {!reset} skips the value sweep. *)

val alloc : t -> int -> int
(** [alloc a pos] claims a chunk for position [pos] (which must have
    none), clears its [res] row and [cmax], records it in [idx], and
    returns its id. Amortized O(nslots). *)

val free_chunk : t -> int -> unit
(** Return chunk [c] to the free list, clearing its value slots; the
    caller clears (or overwrites) its [idx] entry. The id is reused by
    a later {!alloc}. *)

val edit : t -> start:int -> old_len:int -> new_len:int -> int * int
(** Splice the arena across a text edit replacing [old_len] bytes at
    [start] with [new_len] bytes, exactly like the per-chunk relocation
    the engines used to do on boxed chunk arrays: entries that examined
    no byte past [start] survive in place, chunks at relocated
    positions move by [new_len - old_len] (res offsets are relative, so
    a move is a pure re-index), and everything else is reclaimed.
    Requires a warm arena with [start + old_len <= idx_len - 1].
    Returns [(reused, relocated)] chunk counts for [Stats]. *)
