open Rats_support

type kind =
  | Syntax
  | Resource_exhausted of { which : Limits.which; at : int; consumed : int }

type t = {
  position : int;
  expected : string list;
  consumed : int;
  kind : kind;
}

(* Expected sets are sets: render order must not leak the trace order
   the engine happened to discover the alternatives in (the two back
   ends, and warm vs cold runs of a session, reach the farthest point
   along different paths). Sorting makes messages byte-identical across
   runs and back ends. *)
let dedup xs = List.sort_uniq String.compare xs

let v ~position ~expected ?consumed () =
  {
    position;
    expected = dedup expected;
    consumed = Option.value consumed ~default:position;
    kind = Syntax;
  }

let resource_exhausted ~which ~at ?position ?(expected = []) ?consumed () =
  let consumed = Option.value consumed ~default:at in
  {
    position = Option.value position ~default:at;
    expected = dedup expected;
    consumed;
    kind = Resource_exhausted { which; at; consumed };
  }

let exhausted_which t =
  match t.kind with
  | Syntax -> None
  | Resource_exhausted { which; _ } -> Some which

let message t =
  match t.kind with
  | Resource_exhausted { which; at; _ } ->
      Printf.sprintf "%s (offset %d)" (Limits.which_message which) at
  | Syntax -> (
      match t.expected with
      | [] -> "parse error"
      | expected ->
          let rec render = function
            | [] -> ""
            | [ x ] -> x
            | [ x; y ] -> x ^ " or " ^ y
            | x :: rest -> x ^ ", " ^ render rest
          in
          "expected " ^ render expected)

let to_diagnostic t =
  Diagnostic.error ~span:(Span.point t.position) (message t)

let pp ?source ppf t =
  (match source with
  | Some src -> Format.fprintf ppf "%a: " (Source.pp_location src) t.position
  | None -> Format.fprintf ppf "offset %d: " t.position);
  Format.fprintf ppf "%s" (message t);
  match source with
  | Some src ->
      Format.fprintf ppf "@,%a" (Source.pp_excerpt src) (Span.point t.position)
  | None -> ()

let to_string ?source t = Format.asprintf "@[<v>%a@]" (pp ?source) t
