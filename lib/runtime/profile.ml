(* The profiling sink. Time comes from bechamel's monotonic clock
   (CLOCK_MONOTONIC, nanoseconds, noalloc) — the same source the bench
   harness trusts. All state is flat int arrays; an enter/exit costs two
   clock reads and a handful of array writes, and nothing here charges
   fuel or the memo byte budget (the governor regression test depends on
   that). *)

let now () = Int64.to_int (Monotonic_clock.now ())
let now_ns = now

(* Flamegraph events stop being logged past this many entries (~48 MB of
   arrays); counters keep accumulating so tables stay exact. *)
let event_cap = 2_000_000

type t = {
  names : string array;
  calls : int array;
  hits : int array;
  fails : int array;
  self_ns : int array;
  total_ns : int array;
  on_stack : int array;  (* live activations per production (recursion) *)
  (* frame stack *)
  mutable f_prod : int array;
  mutable f_t0 : int array;  (* entry timestamp, relative to t_start *)
  mutable f_child : int array;  (* time attributed to callees so far *)
  mutable fsp : int;
  (* event log: kind 'O'/'C', production, timestamp *)
  mutable ev_kind : Bytes.t;
  mutable ev_prod : int array;
  mutable ev_ts : int array;
  mutable ev_n : int;
  mutable ev_truncated : bool;
  t_start : int;
}

let create ~names =
  let n = Array.length names in
  {
    names;
    calls = Array.make n 0;
    hits = Array.make n 0;
    fails = Array.make n 0;
    self_ns = Array.make n 0;
    total_ns = Array.make n 0;
    on_stack = Array.make n 0;
    f_prod = Array.make 256 0;
    f_t0 = Array.make 256 0;
    f_child = Array.make 256 0;
    fsp = 0;
    ev_kind = Bytes.make 1024 '\000';
    ev_prod = Array.make 1024 0;
    ev_ts = Array.make 1024 0;
    ev_n = 0;
    ev_truncated = false;
    t_start = now ();
  }

let grow_int a =
  let b = Array.make (2 * Array.length a) 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let log_event t kind prod ts =
  if t.ev_n >= event_cap then t.ev_truncated <- true
  else (
    (if t.ev_n = Array.length t.ev_prod then (
       let cap = 2 * t.ev_n in
       let k = Bytes.make cap '\000' in
       Bytes.blit t.ev_kind 0 k 0 t.ev_n;
       t.ev_kind <- k;
       t.ev_prod <- grow_int t.ev_prod;
       t.ev_ts <- grow_int t.ev_ts));
    Bytes.unsafe_set t.ev_kind t.ev_n kind;
    Array.unsafe_set t.ev_prod t.ev_n prod;
    Array.unsafe_set t.ev_ts t.ev_n ts;
    t.ev_n <- t.ev_n + 1)

let enter t prod =
  let ts = now () - t.t_start in
  t.calls.(prod) <- t.calls.(prod) + 1;
  t.on_stack.(prod) <- t.on_stack.(prod) + 1;
  (if t.fsp = Array.length t.f_prod then (
     t.f_prod <- grow_int t.f_prod;
     t.f_t0 <- grow_int t.f_t0;
     t.f_child <- grow_int t.f_child));
  let sp = t.fsp in
  Array.unsafe_set t.f_prod sp prod;
  Array.unsafe_set t.f_t0 sp ts;
  Array.unsafe_set t.f_child sp 0;
  t.fsp <- sp + 1;
  log_event t 'O' prod ts

(* Close the top frame at timestamp [ts]: self = elapsed - callee time;
   total only when the outermost activation of a recursive production
   closes (so recursion is not double-counted). *)
let close_top t ts =
  t.fsp <- t.fsp - 1;
  let sp = t.fsp in
  let prod = Array.unsafe_get t.f_prod sp in
  let dt = ts - Array.unsafe_get t.f_t0 sp in
  t.self_ns.(prod) <- t.self_ns.(prod) + dt - Array.unsafe_get t.f_child sp;
  t.on_stack.(prod) <- t.on_stack.(prod) - 1;
  if t.on_stack.(prod) = 0 then t.total_ns.(prod) <- t.total_ns.(prod) + dt;
  if sp > 0 then
    Array.unsafe_set t.f_child (sp - 1)
      (Array.unsafe_get t.f_child (sp - 1) + dt);
  log_event t 'C' prod ts;
  prod

let exit t prod ~ok ~hit =
  let ts = now () - t.t_start in
  let popped = close_top t ts in
  assert (popped = prod);
  if hit then t.hits.(prod) <- t.hits.(prod) + 1;
  if not ok then t.fails.(prod) <- t.fails.(prod) + 1

let finalize t =
  let ts = now () - t.t_start in
  while t.fsp > 0 do
    ignore (close_top t ts)
  done

(* --- reporting ---------------------------------------------------------- *)

type row = {
  row_prod : int;
  row_name : string;
  row_calls : int;
  row_hits : int;
  row_fails : int;
  row_self_ns : int;
  row_total_ns : int;
}

let rows t =
  let out = ref [] in
  Array.iteri
    (fun i calls ->
      if calls > 0 then
        out :=
          {
            row_prod = i;
            row_name = t.names.(i);
            row_calls = calls;
            row_hits = t.hits.(i);
            row_fails = t.fails.(i);
            row_self_ns = t.self_ns.(i);
            row_total_ns = t.total_ns.(i);
          }
          :: !out)
    t.calls;
  List.sort (fun a b -> compare b.row_self_ns a.row_self_ns) !out

let invocation_sum t = Array.fold_left ( + ) 0 t.calls

let pp_table ?top ppf t =
  let all = rows t in
  let shown = match top with None -> all | Some n -> List.filteri (fun i _ -> i < n) all in
  let total_self =
    List.fold_left (fun acc r -> acc + r.row_self_ns) 0 all
  in
  Format.fprintf ppf "  %-28s %10s %9s %8s %10s %10s %6s@." "production"
    "calls" "hits" "fails" "self ms" "total ms" "self%";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-28s %10d %9d %8d %10.3f %10.3f %5.1f%%@."
        r.row_name r.row_calls r.row_hits r.row_fails
        (float_of_int r.row_self_ns /. 1e6)
        (float_of_int r.row_total_ns /. 1e6)
        (if total_self = 0 then 0.
         else 100. *. float_of_int r.row_self_ns /. float_of_int total_self))
    shown;
  let omitted = List.length all - List.length shown in
  if omitted > 0 then
    Format.fprintf ppf "  ... %d more production%s@." omitted
      (if omitted = 1 then "" else "s");
  if t.ev_truncated then
    Format.fprintf ppf "  (event log truncated at %d events)@." event_cap

let events_logged t = t.ev_n
let truncated t = t.ev_truncated

(* --- flamegraph export --------------------------------------------------- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Speedscope "evented" profile: frames are productions, events are the
   logged open/close pairs. [finalize] guarantees balance. *)
let to_speedscope ?(name = "rats parse") t =
  let b = Buffer.create (t.ev_n * 32) in
  Buffer.add_string b
    "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",";
  Buffer.add_string b "\"shared\":{\"frames\":[";
  Array.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":\"";
      json_escape b n;
      Buffer.add_string b "\"}")
    t.names;
  Buffer.add_string b "]},\"profiles\":[{\"type\":\"evented\",\"name\":\"";
  json_escape b name;
  Buffer.add_string b "\",\"unit\":\"nanoseconds\",\"startValue\":0,";
  let end_value = if t.ev_n = 0 then 0 else t.ev_ts.(t.ev_n - 1) in
  Buffer.add_string b (Printf.sprintf "\"endValue\":%d,\"events\":[" end_value);
  for i = 0 to t.ev_n - 1 do
    if i > 0 then Buffer.add_char b ',';
    Buffer.add_string b
      (Printf.sprintf "{\"type\":\"%c\",\"frame\":%d,\"at\":%d}"
         (Bytes.get t.ev_kind i) t.ev_prod.(i) t.ev_ts.(i))
  done;
  Buffer.add_string b "]}],\"name\":\"";
  json_escape b name;
  Buffer.add_string b "\",\"activeProfileIndex\":0}";
  Buffer.contents b

(* --- batch-level spans --------------------------------------------------- *)

module Spans = struct
  type event = {
    e_name : string;
    e_cat : string;
    e_args : (string * string) list;
    e_ts : int;  (* absolute now_ns reading *)
    e_dur : int;  (* -1 = instant marker *)
  }

  type t = { mutable rev : event list; mutable n : int }

  let create () = { rev = []; n = 0 }

  let span ?(cat = "batch") ?(args = []) t ~name ~ts_ns ~dur_ns =
    t.rev <-
      { e_name = name; e_cat = cat; e_args = args; e_ts = ts_ns; e_dur = dur_ns }
      :: t.rev;
    t.n <- t.n + 1

  let instant ?(cat = "batch") ?(args = []) t ~name ~ts_ns =
    t.rev <-
      { e_name = name; e_cat = cat; e_args = args; e_ts = ts_ns; e_dur = -1 }
      :: t.rev;
    t.n <- t.n + 1

  let count t = t.n

  let to_chrome t =
    let events = List.rev t.rev in
    let t0 =
      List.fold_left (fun acc e -> min acc e.e_ts) max_int events
    in
    let b = Buffer.create (t.n * 96) in
    Buffer.add_char b '[';
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b "{\"name\":\"";
        json_escape b e.e_name;
        Buffer.add_string b "\",\"cat\":\"";
        json_escape b e.e_cat;
        Buffer.add_string b
          (Printf.sprintf "\",\"ph\":\"%s\",\"ts\":%.3f"
             (if e.e_dur < 0 then "i" else "X")
             (float_of_int (e.e_ts - t0) /. 1e3));
        if e.e_dur >= 0 then
          Buffer.add_string b
            (Printf.sprintf ",\"dur\":%.3f" (float_of_int e.e_dur /. 1e3))
        else Buffer.add_string b ",\"s\":\"t\"";
        Buffer.add_string b ",\"pid\":1,\"tid\":1";
        if e.e_args <> [] then begin
          Buffer.add_string b ",\"args\":{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_char b '"';
              json_escape b k;
              Buffer.add_string b "\":\"";
              json_escape b v;
              Buffer.add_char b '"')
            e.e_args;
          Buffer.add_char b '}'
        end;
        Buffer.add_char b '}')
      events;
    Buffer.add_char b ']';
    Buffer.contents b
end

let to_chrome t =
  let b = Buffer.create (t.ev_n * 48) in
  Buffer.add_char b '[';
  for i = 0 to t.ev_n - 1 do
    if i > 0 then Buffer.add_char b ',';
    Buffer.add_string b "{\"name\":\"";
    json_escape b t.names.(t.ev_prod.(i));
    Buffer.add_string b
      (Printf.sprintf
         "\",\"cat\":\"parse\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":1,\"tid\":1}"
         (if Bytes.get t.ev_kind i = 'O' then 'B' else 'E')
         (float_of_int t.ev_ts.(i) /. 1e3))
  done;
  Buffer.add_char b ']';
  Buffer.contents b
