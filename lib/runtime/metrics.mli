(** Pipeline metrics: a registry of counters, gauges and log-bucketed
    histograms with Prometheus text exposition and JSON export.

    This is the instrumentation substrate for the batch runner and the
    future [rml serve] daemon. Design constraints, in order:

    {b Allocation-free on the record path.} {!inc}, {!add}, {!set} and
    {!observe} touch only mutable int fields and preallocated int
    arrays — no boxing, no float math, no closure. A histogram is one
    fixed-size [int array] of {!nbuckets} cells; finding a value's
    bucket is an integer shift loop (no [log], no table). The PR 5
    zero-cost-when-off contract is preserved one level up: callers
    guard every record call on an [option] that is [None] unless
    metrics were requested, so the off path never enters this module.

    {b Mergeable.} Two registries recording the same instrument set —
    the future per-domain registries of [rml serve] — combine with
    {!merge}: counters and histogram buckets sum; gauges keep the
    maximum (a gauge here is a high-water reading, e.g. arena
    occupancy, so max is the aggregate an operator wants).

    {b Log-scale buckets with bounded relative error.} Values [0..15]
    get exact identity buckets. Above that, each power-of-two octave is
    split into 8 sub-buckets, so a bucket's width is at most 1/8 of its
    lower bound: any quantile estimated from the buckets (midpoint
    rule, {!quantile}) is within ±6.25% of the true sample — one
    bucket's relative error. 480 cells cover the whole nonnegative
    [int] range, microseconds to hours in one array. *)

type t
(** A registry: an ordered set of named instruments. Registration order
    is exposition order. *)

type counter
type gauge
type histogram

val create : unit -> t

(** {1 Registration}

    Registering the same [(name, labels)] pair again returns the
    existing instrument, so re-registration is idempotent (merge and
    multi-phase runs rely on this). Registering a name under two
    different instrument kinds raises [Invalid_argument]. [labels] are
    Prometheus-style key/value pairs distinguishing series of one
    metric family (e.g. [("status", "ok")]). *)

val counter :
  t -> ?labels:(string * string) list -> ?help:string -> string -> counter

val gauge :
  t -> ?labels:(string * string) list -> ?help:string -> string -> gauge

val histogram :
  t -> ?labels:(string * string) list -> ?help:string -> string -> histogram

(** {1 Recording} — allocation-free, safe to call per document. *)

val inc : counter -> unit
val add : counter -> int -> unit
(** Counters are monotone: [add] with a negative delta raises
    [Invalid_argument] (Prometheus counters must never go down). *)

val set : gauge -> int -> unit
val observe : histogram -> int -> unit
(** Negative observations clamp to [0]. *)

(** {1 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> int
val hist_count : histogram -> int
val hist_sum : histogram -> int

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0 < q <= 1]) from the
    buckets: the value of the bucket holding the sample of rank
    [ceil (q * count)], exact for identity buckets, bucket midpoint
    above — within one log-bucket's relative error (≤ ±6.25%) of the
    true sample. [0.] when empty. *)

(** {1 Aggregation} *)

val merge : into:t -> t -> unit
(** Fold [src] into [into], matching instruments by [(name, labels)]:
    counters and histogram buckets/sums/counts add; gauges keep the
    max (high-water semantics). Instruments absent from [into] are
    registered. Raises [Invalid_argument] on a kind clash. *)

(** {1 Export} *)

val to_prometheus : t -> string
(** Prometheus text exposition format, version 0.0.4: one
    [# HELP]/[# TYPE] header per metric family, all series of a family
    grouped, histograms as cumulative [_bucket{le="..."}] series
    (non-empty buckets plus the mandatory [+Inf]) with [_sum] and
    [_count]. *)

val to_json : t -> string
(** A JSON array, one object per instrument: counters/gauges carry
    ["value"]; histograms carry ["count"], ["sum"], ["p50"], ["p90"],
    ["p99"] and a ["buckets"] array of [[le, count]] pairs (non-empty
    buckets only). *)

(** {1 Bucket scheme} — exposed so tests can pin the geometry. *)

val nbuckets : int

val bucket_of : int -> int
(** The bucket index a value lands in. Total and monotone:
    negative values clamp to bucket [0]. *)

val bucket_bounds : int -> int * int
(** [(lo, hi)]: the bucket holds values [v] with [lo <= v < hi].
    [hi - lo <= max 1 (lo / 8)] — the ≤12.5%-width guarantee. *)
