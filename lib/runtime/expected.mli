(** Farthest-failure tracking, shared by the closure engine and the
    bytecode VM.

    Both back ends report errors the same way: the input offset that the
    parse got farthest to before failing, together with the descriptions
    of what could have matched there. Descriptions are deduplicated on
    insertion — backtracking retries the same expression at the same
    position many times, and duplicates would otherwise crowd distinct
    expectations out of the capped list. *)

type t

val max_entries : int
(** Cap on retained descriptions per position (32). When more distinct
    descriptions fail at the farthest position, the retained set is the
    [max_entries] lexicographically smallest of them — a deterministic,
    arrival-order-independent rule, so both back ends (which visit
    alternatives in different orders) always report the same set. *)

val create : unit -> t
val reset : t -> unit

val record : t -> int -> string -> unit
(** [record t pos desc] notes that [desc] failed to match at [pos].
    A new farthest position resets the list; at the current farthest
    position the description is appended unless already present — or,
    past the cap, unless it displaces the lexicographically largest
    retained entry (see {!max_entries}); earlier positions are
    ignored. *)

val farthest : t -> int
(** Farthest failure offset seen, [-1] if none. *)

val descriptions : t -> string list
(** Deduplicated descriptions at the farthest position, oldest first. *)

val error : t -> Parse_error.t
(** The outright-failure parse error. *)

val exhausted : t -> which:Limits.which -> at:int -> Parse_error.t
(** The resource-exhaustion error for a run that tripped [which] at
    input offset [at], carrying the farthest failure recorded so far. *)

val result :
  t ->
  len:int ->
  require_eof:bool ->
  stop:int ->
  'a ->
  ('a, Parse_error.t) result
(** [result t ~len ~require_eof ~stop v] is the shared run epilogue:
    [stop] is the offset reached by the start production ([-1] when it
    failed outright). Produces [Ok v], or the appropriate error for an
    outright failure or an incomplete consume under [require_eof]. *)
