type t = {
  fuel : int;
  max_depth : int;
  max_memo_bytes : int;
  max_input_bytes : int;
}

let unlimited =
  {
    fuel = max_int;
    max_depth = max_int;
    max_memo_bytes = max_int;
    max_input_bytes = max_int;
  }

let hardened =
  {
    fuel = 5_000_000;
    max_depth = 1_024;
    max_memo_bytes = 64 * 1024 * 1024;
    max_input_bytes = 8 * 1024 * 1024;
  }

let v ?(fuel = max_int) ?(max_depth = max_int) ?(max_memo_bytes = max_int)
    ?(max_input_bytes = max_int) () =
  { fuel; max_depth; max_memo_bytes; max_input_bytes }

let is_unlimited t =
  t.fuel = max_int && t.max_depth = max_int && t.max_memo_bytes = max_int
  && t.max_input_bytes = max_int

type which = Fuel | Depth | Memory | Input

let which_name = function
  | Fuel -> "fuel"
  | Depth -> "depth"
  | Memory -> "memory"
  | Input -> "input"

let which_message = function
  | Fuel -> "fuel budget exhausted"
  | Depth -> "recursion depth limit exceeded"
  | Memory -> "memory limit exceeded"
  | Input -> "input longer than the configured limit"

let pp_which ppf w = Format.pp_print_string ppf (which_name w)

(* Approximate byte cost of memo storage, shared by both back ends so
   the budget degrades at the same point whichever one runs. The model
   predates the arena (it priced a chunk as three boxed nslots-word
   arrays plus headers) and its VALUES ARE LOAD-BEARING: governed runs
   degrade at identical decision points on both back ends, and the
   same-trip property suites pin that alignment. The arena's flat rows
   cost about the same per chunk anyway; do not "recalibrate" without
   versioning the budget semantics. A hash-table entry is the key, the
   boxed tuple and its bucket. *)
let chunk_cost ?(value_slots = 0) nslots =
  48 + (24 * nslots) + (24 * value_slots)
let table_entry_cost = 64

let field ppf name v =
  if v = max_int then Format.fprintf ppf " %s=∞" name
  else Format.fprintf ppf " %s=%d" name v

let pp ppf t =
  if is_unlimited t then Format.pp_print_string ppf "unlimited"
  else (
    Format.pp_print_string ppf "limits";
    field ppf "fuel" t.fuel;
    field ppf "depth" t.max_depth;
    field ppf "memo-bytes" t.max_memo_bytes;
    field ppf "input-bytes" t.max_input_bytes)

let describe t = Format.asprintf "%a" pp t
