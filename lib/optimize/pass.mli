(** A named grammar transformation, as the optimizer driver sees it.

    A pass is a documented record: a [run] function over the driver's
    shared {!Rats_peg.Analysis_ctx.t}, plus the metadata the driver
    needs to schedule and instrument it — which cached analyses the
    transformation invalidates, and whether it runs before or after the
    well-formedness gate. The canonical ordered registry the optimizer,
    the E3 ladder and the [rml] CLI all share lives in {!Pipeline}. *)

open Rats_peg

type stage =
  | Repair
      (** Runs {e before} the well-formedness gate: transformations such
          as left-recursion elimination that make an otherwise-rejected
          grammar parseable. *)
  | Optimize
      (** Runs after the gate on a grammar already known well-formed. *)

type t = {
  name : string;  (** registry key, e.g. ["inline"]; unique, CLI-facing *)
  doc : string;  (** one-line description for [rml passes] *)
  stage : stage;
  invalidates : Analysis_ctx.invalidation;
      (** what the driver must drop from its cache after this pass *)
  run : Analysis_ctx.t -> Grammar.t -> Grammar.t;
}

val v :
  ?stage:stage ->
  ?invalidates:Analysis_ctx.invalidation ->
  name:string ->
  doc:string ->
  (Analysis_ctx.t -> Grammar.t -> Grammar.t) ->
  t
(** Defaults: [Optimize] stage, [Analyses] invalidation (the safe,
    recompute-everything assumption). *)

(** {1 The standard passes}

    One per optimization of the paper's ladder, wrapping {!Passes}. *)

val transients : t
(** Unmemoize single-reference productions. Attribute-only. *)

val terminals : t
(** Unmemoize lexical-level productions. Attribute-only. *)

val inline : ?threshold:int -> unit -> t
(** Cost-based inlining of small non-recursive productions; the
    [threshold] (default 12) is the maximum body size inlined. *)

val fold : t
(** Merge structurally identical private productions. *)

val factor : t
(** Factor common prefixes out of adjacent choice alternatives. *)

val prune : t
(** Drop productions unreachable from the start/public set. *)

val leftrec : t
(** Opt-in {!stage}-[Repair] pass: rewrite direct left recursion into
    iteration so the gate's left-recursion check passes. Not part of the
    default pipeline — Rats! treats it as an explicit transformation,
    not an optimization. *)
