open Rats_peg

type stage = Repair | Optimize

type t = {
  name : string;
  doc : string;
  stage : stage;
  invalidates : Analysis_ctx.invalidation;
  run : Analysis_ctx.t -> Grammar.t -> Grammar.t;
}

let v ?(stage = Optimize) ?(invalidates = Analysis_ctx.Analyses) ~name ~doc run
    =
  { name; doc; stage; invalidates; run }

let transients =
  v ~name:"transients" ~invalidates:Analysis_ctx.Nothing
    ~doc:"unmemoize productions referenced at most once"
    (fun ctx g -> Passes.mark_transients ~ctx g)

let terminals =
  v ~name:"terminals" ~invalidates:Analysis_ctx.Nothing
    ~doc:"unmemoize lexical-level productions"
    (fun ctx g -> Passes.mark_terminals ~ctx g)

let inline ?threshold () =
  v ~name:"inline"
    ~doc:"inline small non-recursive productions, then prune"
    (fun ctx g -> Passes.inline_pass ?threshold ~ctx g)

let fold =
  v ~name:"fold"
    ~doc:"merge structurally identical private productions"
    (fun _ g -> Passes.fold_duplicates g)

let factor =
  v ~name:"factor"
    ~doc:"factor common prefixes of adjacent alternatives"
    (fun _ g -> Passes.factor_prefixes g)

let prune =
  v ~name:"prune"
    ~doc:"drop productions unreachable from the start symbol"
    (fun ctx g -> Passes.prune ~ctx g)

let leftrec =
  v ~name:"leftrec" ~stage:Repair
    ~doc:"rewrite direct left recursion into iteration"
    (fun _ g -> Passes.eliminate_left_recursion g)
