(** The optimizer driver: runs an ordered pass list over a grammar with
    a shared analysis cache, per-pass instrumentation and a
    well-formedness gate.

    Execution order:

    + {!Pass.Repair}-stage passes (e.g. left-recursion elimination), in
      list order;
    + the {e gate} (unless [~gate:false]): {!Rats_peg.Analysis.check}
      hard errors — left recursion, dangling references, vacuous
      repetition — abort the run, and {!Rats_peg.Lint.check} warnings
      are collected into the outcome. This is where a composed grammar
      is rejected {e before} any optimization effort is spent on it;
    + {!Pass.Optimize}-stage passes, in list order, each timed and
      measured (production and IR-node deltas) into a
      {!Rats_runtime.Stats.pass_row}. With [~verify:true] the driver
      re-checks well-formedness after every pass and aborts if a pass
      broke the grammar — each transformation stays independently
      verifiable as they compose.

    One {!Rats_peg.Analysis_ctx.t} flows through the whole run;
    attribute-only passes declare {!Rats_peg.Analysis_ctx.Nothing} and
    the cached FIRST sets, reference counts and reachability survive
    them untouched. *)

open Rats_support
open Rats_peg

type outcome = {
  grammar : Grammar.t;  (** the grammar after the last pass *)
  rows : Rats_runtime.Stats.pass_row list;
      (** one per executed pass, in execution order *)
  warnings : Diagnostic.t list;  (** lint findings from the gate *)
}

val run :
  ?gate:bool ->
  ?verify:bool ->
  ?dump_after:(Pass.t -> Grammar.t -> unit) ->
  ?on_pass:(Rats_runtime.Stats.pass_row -> unit) ->
  Pass.t list ->
  Grammar.t ->
  (outcome, Diagnostic.t list) result
(** [run passes g] — defaults: [gate] on, [verify] off. [dump_after] is
    called with each pass and the grammar it produced (the CLI's
    [--dump-after] hook); [on_pass] streams instrumentation rows as they
    are measured. With [~gate:false ~verify:false] the result is always
    [Ok]. *)

val run_exn :
  ?gate:bool ->
  ?verify:bool ->
  ?dump_after:(Pass.t -> Grammar.t -> unit) ->
  ?on_pass:(Rats_runtime.Stats.pass_row -> unit) ->
  Pass.t list ->
  Grammar.t ->
  outcome
(** Like {!run}; raises {!Rats_support.Diagnostic.Fail} on the first
    error. *)

val total_time : outcome -> float
(** Sum of the per-pass wall times, in seconds. *)
