open Rats_support
open Rats_peg
module Stats = Rats_runtime.Stats

type outcome = {
  grammar : Grammar.t;
  rows : Stats.pass_row list;
  warnings : Diagnostic.t list;
}

let total_time o = List.fold_left (fun acc r -> acc +. r.Stats.pass_time) 0. o.rows

(* Structural equality, spans and origins ignored: what "this pass
   changed nothing" means for instrumentation. *)
let grammar_equal a b =
  String.equal (Grammar.start a) (Grammar.start b)
  && List.compare_lengths (Grammar.productions a) (Grammar.productions b) = 0
  && List.for_all2 Production.equal (Grammar.productions a)
       (Grammar.productions b)

exception Abort of Diagnostic.t list

let run ?(gate = true) ?(verify = false) ?dump_after ?on_pass passes g =
  let repair, opt =
    List.partition (fun (p : Pass.t) -> p.stage = Pass.Repair) passes
  in
  let ctx = Analysis_ctx.create g in
  let rows = ref [] in
  let exec ~check (p : Pass.t) g =
    let t0 = Unix.gettimeofday () in
    let g' = p.run ctx g in
    let dt = Unix.gettimeofday () -. t0 in
    Analysis_ctx.advance ctx ~invalidates:p.invalidates g';
    let row =
      {
        Stats.pass_name = p.name;
        pass_time = dt;
        prods_before = Grammar.length g;
        prods_after = Grammar.length g';
        nodes_before = Grammar.size g;
        nodes_after = Grammar.size g';
        pass_changed = not (grammar_equal g g');
      }
    in
    rows := row :: !rows;
    Option.iter (fun f -> f row) on_pass;
    Option.iter (fun f -> f p g') dump_after;
    (if check then
       match Analysis.check (Analysis_ctx.analysis ctx) with
       | [] -> ()
       | ds ->
           raise
             (Abort
                (Diagnostic.errorf
                   "optimizer pass %S left the grammar ill-formed" p.name
                 :: ds)));
    g'
  in
  try
    let g = List.fold_left (fun g p -> exec ~check:false p g) g repair in
    let warnings =
      if not gate then []
      else
        let a = Analysis_ctx.analysis ctx in
        match List.filter Diagnostic.is_error (Analysis.check a) with
        | _ :: _ as hard -> raise (Abort hard)
        | [] -> Lint.check ~analysis:a g
    in
    let g = List.fold_left (fun g p -> exec ~check:verify p g) g opt in
    Ok { grammar = g; rows = List.rev !rows; warnings }
  with Abort ds -> Error ds

let run_exn ?gate ?verify ?dump_after ?on_pass passes g =
  match run ?gate ?verify ?dump_after ?on_pass passes g with
  | Ok o -> o
  | Error ds ->
      raise
        (Diagnostic.Fail
           (match ds with
           | d :: _ -> d
           | [] -> Diagnostic.error "optimizer driver failed"))
