(** The canonical pass registry, the all-on optimizer, and the E3
    optimization ladder — every pass chain in the system derives from
    the one ordered {!registry} here.

    Rung 0 of the ladder is the paper's baseline: every construct
    desugared to a memoized nonterminal, hashtable memoization of
    everything. Each subsequent rung adds one registry step,
    cumulatively, ending in the fully optimized parser the other
    experiments use. *)

open Rats_peg

type rung = {
  index : int;
  name : string;  (** short label for bench tables, e.g. ["+chunks"] *)
  detail : string;
  grammar : Grammar.t;  (** transformed grammar for this rung *)
  config : Rats_runtime.Config.t;  (** engine switches for this rung *)
}

type step = {
  label : string;  (** ladder label, e.g. ["+inlining"] *)
  detail : string;
  passes : Pass.t list;  (** grammar passes this step adds (often none) *)
  config : Rats_runtime.Config.t -> Rats_runtime.Config.t;
      (** engine switches this step turns on *)
  native_repetitions : bool;
      (** from this step on, ladder rungs start from the sugared grammar
          (repetitions as engine loops, not helper productions) *)
}

val registry : ?inline_threshold:int -> unit -> step list
(** The eleven steps, in cumulative ladder order: baseline, +chunks,
    +transients, +terminals, +repetitions, +inlining, +folding,
    +factoring, +dispatch, +lean-values, +bytecode. *)

val passes : ?inline_threshold:int -> unit -> Pass.t list
(** The default grammar-side pipeline: every pass of every registry
    step, in order (transients, terminals, inline, fold, factor,
    prune). This is what {!optimize} and {!Rats_core}'s [parser_of]
    run. *)

val optional_passes : Pass.t list
(** Registered passes that no default pipeline includes — currently the
    [leftrec] repair pass. Enabled by name via {!find_pass} (the CLI's
    [--leftrec] / [--passes] flags). *)

val all_passes : ?inline_threshold:int -> unit -> Pass.t list
(** {!passes} followed by {!optional_passes}: everything with a
    registered name, for listings and per-pass test suites. *)

val find_pass : string -> Pass.t option
(** Look a pass up by registry name, opt-in passes included. *)

val ladder : ?inline_threshold:int -> Grammar.t -> rung list
(** All rungs, each built by running the pass prefix of its registry
    steps through the {!Driver} (ungated — the ladder measures, it does
    not validate). *)

val optimize : ?inline_threshold:int -> Grammar.t -> Grammar.t
(** Run {!passes} through the {!Driver} with the gate off: a pure
    grammar transformation that cannot fail. Pair with
    {!Rats_runtime.Config.optimized}. *)

val prepare_optimized :
  ?inline_threshold:int ->
  Grammar.t ->
  (Rats_runtime.Engine.t, Rats_support.Diagnostic.t list) result
(** Convenience: run the gated driver (so ill-formed grammars fail fast
    with diagnostics, before any optimization) and prepare an engine
    with the fully optimized configuration. *)
