(** The optimization ladder of experiment E3, and the all-on optimizer.

    Rung 0 is the paper's baseline: every construct desugared to a
    memoized nonterminal, hashtable memoization of everything. Each
    subsequent rung adds one optimization, cumulatively, ending in the
    fully optimized parser the other experiments use. *)

open Rats_peg

type rung = {
  index : int;
  name : string;  (** short label for bench tables, e.g. ["+chunks"] *)
  detail : string;
  grammar : Grammar.t;  (** transformed grammar for this rung *)
  config : Rats_runtime.Config.t;  (** engine switches for this rung *)
}

val ladder : Grammar.t -> rung list
(** All rungs, in cumulative order:
    baseline, +chunks, +transients, +terminals, +repetitions, +inlining,
    +folding, +factoring, +dispatch, +lean-values, +bytecode. *)

val optimize : ?inline_threshold:int -> Grammar.t -> Grammar.t
(** The full grammar-side pipeline: transients, terminals, inlining,
    folding, factoring, pruning. Pair with
    {!Rats_runtime.Config.optimized}. *)

val prepare_optimized :
  ?inline_threshold:int ->
  Grammar.t ->
  (Rats_runtime.Engine.t, Rats_support.Diagnostic.t list) result
(** Convenience: optimize the grammar and prepare an engine with the
    fully optimized configuration. *)
