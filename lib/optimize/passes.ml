open Rats_peg
module SSet = Analysis.StringSet

(* A pass invoked by the driver receives the driver's shared cache; a
   pass invoked directly (the historical entry points below) builds a
   private one. The physical-equality guard means a stale context is
   silently replaced rather than trusted. *)
let ctx_for ?ctx g =
  match ctx with
  | Some c when Analysis_ctx.grammar c == g -> c
  | _ -> Analysis_ctx.create g

(* --- pruning ------------------------------------------------------------ *)

let prune ?ctx g =
  let keep = Analysis_ctx.reachable (ctx_for ?ctx g) in
  Grammar.restrict g ~keep:(fun n -> SSet.mem n keep)

(* --- transient marking --------------------------------------------------- *)

let mark_transients ?ctx g =
  let c = ctx_for ?ctx g in
  Grammar.map
    (fun (p : Production.t) ->
      if p.attrs.Attr.memo = Attr.Memo_auto && Analysis_ctx.ref_count c p.name <= 1
      then Production.with_attrs p { p.attrs with Attr.memo = Attr.Memo_never }
      else p)
    g

(* --- terminal detection --------------------------------------------------- *)

let terminal_set ?ctx g = Analysis_ctx.terminals (ctx_for ?ctx g)

let mark_terminals ?ctx g =
  let terminals = terminal_set ?ctx g in
  Grammar.map
    (fun (p : Production.t) ->
      if p.attrs.Attr.memo = Attr.Memo_auto && SSet.mem p.name terminals then
        Production.with_attrs p { p.attrs with Attr.memo = Attr.Memo_never }
      else p)
    g

(* --- inlining ------------------------------------------------------------- *)

let expansion_of (p : Production.t) =
  match p.attrs.Attr.kind with
  | Attr.Plain -> p.expr
  | Attr.Generic -> Expr.node p.name p.expr
  | Attr.Text -> Expr.token p.expr
  | Attr.Void -> Expr.drop p.expr

let inline_pass ?(threshold = 12) ?ctx g =
  (* Only the first round can reuse the shared cache; every later round
     analyzes the grammar its own substitutions produced. *)
  let rec iterate ctx g rounds =
    if rounds = 0 then g
    else
      let a = Analysis_ctx.analysis (ctx_for ?ctx g) in
      let recursive (p : Production.t) =
        SSet.mem p.name (Analysis.reachable_from a (Expr.refs p.expr))
      in
      let inlinable = Hashtbl.create 16 in
      List.iter
        (fun (p : Production.t) ->
          let want =
            match p.attrs.Attr.inline with
            | Attr.Inline_never -> false
            | Attr.Inline_always -> true
            | Attr.Inline_auto -> Production.size p <= threshold
          in
          if
            want
            && (not (String.equal p.name (Grammar.start g)))
            && not (recursive p)
          then
            let ex = expansion_of p in
            (* A top-level Bind would leak its label into host sequences. *)
            match ex.Expr.it with
            | Expr.Bind _ -> ()
            | _ -> Hashtbl.replace inlinable p.name ex)
        (Grammar.productions g);
      if Hashtbl.length inlinable = 0 then g
      else
        let changed = ref false in
        let rec subst (e : Expr.t) =
          match e.it with
          | Expr.Ref n -> (
              match Hashtbl.find_opt inlinable n with
              | Some ex ->
                  changed := true;
                  ex
              | None -> e)
          | _ -> Expr.map_children subst e
        in
        let g' =
          Grammar.map
            (fun (p : Production.t) ->
              (* Do not rewrite the bodies of productions being inlined
                 away; they get pruned. *)
              if Hashtbl.mem inlinable p.name && not (Production.is_public p)
              then p
              else Production.with_expr p (subst p.expr))
            g
        in
        if !changed then iterate None (prune g') (rounds - 1) else g
  in
  iterate ctx g 5

(* --- duplicate folding ----------------------------------------------------- *)

let foldable (p : Production.t) =
  (not (Production.is_public p))
  &&
  match p.attrs.Attr.kind with
  | Attr.Plain | Attr.Text | Attr.Void -> true
  | Attr.Generic -> false

let fold_duplicates g =
  let rec iterate g rounds =
    if rounds = 0 then g
    else
      let canon = Hashtbl.create 32 in
      let redirect = Hashtbl.create 8 in
      List.iter
        (fun (p : Production.t) ->
          if foldable p && not (String.equal p.name (Grammar.start g)) then
            let key =
              Printf.sprintf "%s|%s|%s"
                (match p.attrs.Attr.kind with
                | Attr.Plain -> "p"
                | Attr.Text -> "t"
                | Attr.Void -> "v"
                | Attr.Generic -> assert false)
                (match p.attrs.Attr.memo with
                | Attr.Memo_auto -> "a"
                | Attr.Memo_always -> "m"
                | Attr.Memo_never -> "n")
                (Pretty.expr_to_string p.expr)
            in
            match Hashtbl.find_opt canon key with
            | Some first -> Hashtbl.replace redirect p.name first
            | None -> Hashtbl.replace canon key p.name)
        (Grammar.productions g);
      if Hashtbl.length redirect = 0 then g
      else
        let rename n = Option.value ~default:n (Hashtbl.find_opt redirect n) in
        let prods =
          List.filter_map
            (fun (p : Production.t) ->
              if Hashtbl.mem redirect p.name then None
              else
                Some (Production.with_expr p (Expr.rename_refs rename p.expr)))
            (Grammar.productions g)
        in
        iterate (Grammar.make_exn ~start:(Grammar.start g) prods) (rounds - 1)
  in
  iterate g 10

(* --- prefix factoring ------------------------------------------------------ *)

let head_tail (e : Expr.t) =
  match e.it with
  | Expr.Seq (hd :: tl) -> Some (hd, tl)
  | Expr.Seq [] | Expr.Empty -> None
  | _ -> Some (e, [])

let tail_expr = function
  | [] -> Expr.empty
  | [ x ] -> x
  | xs -> Expr.mk (Expr.Seq xs)

(* Factoring is only safe when re-running the head after backtracking is
   observably identical to keeping its first result, which holds for all
   deterministic PEG constructs; we conservatively skip heads that touch
   parser state, where the splice rewrite would still be correct but
   reasoning about Record replay is subtler than it is worth. *)
let head_ok hd = not (Expr.is_stateful hd)

let rec factor_expr (e : Expr.t) =
  let e = Expr.map_children factor_expr e in
  match e.it with
  | Expr.Alt alts ->
      let rec regroup = function
        | [] -> []
        | (a : Expr.alt) :: rest -> (
            match head_tail a.body with
            | Some (hd, tl) when head_ok hd ->
                let same, others =
                  let rec take acc = function
                    | (b : Expr.alt) :: more -> (
                        match head_tail b.body with
                        | Some (hd', tl') when Expr.equal hd hd' ->
                            take (tl' :: acc) more
                        | _ -> (List.rev acc, b :: more))
                    | [] -> (List.rev acc, [])
                  in
                  take [] rest
                in
                if same = [] then a :: regroup rest
                else
                  let tails = List.map tail_expr (tl :: same) in
                  let inner =
                    factor_expr
                      (Expr.mk
                         (Expr.Alt
                            (List.map
                               (fun body -> { Expr.label = None; body })
                               tails)))
                  in
                  let body = Expr.mk (Expr.Seq [ hd; Expr.splice inner ]) in
                  { Expr.label = None; body } :: regroup others
            | _ -> a :: regroup rest)
      in
      { e with it = Expr.Alt (regroup alts) }
  | _ -> e

let factor_prefixes g =
  Grammar.map
    (fun (p : Production.t) -> Production.with_expr p (factor_expr p.expr))
    g

(* --- direct left-recursion elimination -------------------------------------- *)

let eliminate_left_recursion g =
  Grammar.map
    (fun (p : Production.t) ->
      match p.expr.Expr.it with
      | Expr.Alt alts ->
          let split (a : Expr.alt) =
            match a.body.Expr.it with
            | Expr.Seq ({ Expr.it = Expr.Ref n; _ } :: rest)
              when String.equal n p.name ->
                Either.Left { a with body = tail_expr rest }
            | Expr.Ref n when String.equal n p.name ->
                (* P = P / ... : a vacuous self-alternative; dropping it
                   preserves the language (it could never make progress). *)
                Either.Left { a with body = Expr.empty }
            | _ -> Either.Right a
          in
          let tails, bases = List.partition_map split alts in
          if tails = [] || bases = [] then p
          else
            let tails =
              (* An empty tail would loop forever; the engine's progress
                 guard would stop it, but dropping it is cleaner. *)
              List.filter
                (fun (a : Expr.alt) -> a.body.Expr.it <> Expr.Empty)
                tails
            in
            let base = Expr.mk (Expr.Alt bases) in
            let expr =
              if tails = [] then base
              else Expr.seq [ base; Expr.star (Expr.mk (Expr.Alt tails)) ]
            in
            Production.with_expr p expr
      | _ -> p)
    g
