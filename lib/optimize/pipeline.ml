open Rats_peg
module Config = Rats_runtime.Config

type rung = {
  index : int;
  name : string;
  detail : string;
  grammar : Grammar.t;
  config : Config.t;
}

let optimize ?inline_threshold g =
  g
  |> Passes.mark_transients
  |> Passes.mark_terminals
  |> Passes.inline_pass ?threshold:inline_threshold
  |> Passes.fold_duplicates
  |> Passes.factor_prefixes
  |> Passes.prune

let ladder g =
  let desugared = Desugar.expand_repetitions g in
  let steps =
    [
      ( "baseline",
        "desugared repetitions, hashtable memo of every production",
        desugared,
        Config.packrat );
      ( "+chunks",
        "memoize into per-position chunks instead of a hashtable",
        desugared,
        Config.v ~memo:Config.Chunked () );
      ( "+transients",
        "single-reference productions lose their memo slots",
        Passes.mark_transients desugared,
        Config.v ~memo:Config.Chunked ~honor_transient:true () );
      ( "+terminals",
        "lexical-level productions lose their memo slots",
        Passes.mark_terminals (Passes.mark_transients desugared),
        Config.v ~memo:Config.Chunked ~honor_transient:true () );
      ( "+repetitions",
        "repetitions run as loops instead of helper productions",
        Passes.mark_terminals (Passes.mark_transients g),
        Config.v ~memo:Config.Chunked ~honor_transient:true () );
      ( "+inlining",
        "cost-based inlining of small non-recursive productions",
        Passes.inline_pass (Passes.mark_terminals (Passes.mark_transients g)),
        Config.v ~memo:Config.Chunked ~honor_transient:true () );
      ( "+folding",
        "structurally equal productions merged",
        Passes.fold_duplicates
          (Passes.inline_pass
             (Passes.mark_terminals (Passes.mark_transients g))),
        Config.v ~memo:Config.Chunked ~honor_transient:true () );
      ( "+factoring",
        "common prefixes of adjacent alternatives factored",
        Passes.prune
          (Passes.factor_prefixes
             (Passes.fold_duplicates
                (Passes.inline_pass
                   (Passes.mark_terminals (Passes.mark_transients g))))),
        Config.v ~memo:Config.Chunked ~honor_transient:true () );
      ( "+dispatch",
        "choice alternatives filtered by FIRST sets",
        Passes.prune
          (Passes.factor_prefixes
             (Passes.fold_duplicates
                (Passes.inline_pass
                   (Passes.mark_terminals (Passes.mark_transients g))))),
        Config.v ~memo:Config.Chunked ~honor_transient:true ~dispatch:true ()
      );
      ( "+lean-values",
        "no semantic values in predicates, tokens, void productions",
        Passes.prune
          (Passes.factor_prefixes
             (Passes.fold_duplicates
                (Passes.inline_pass
                   (Passes.mark_terminals (Passes.mark_transients g))))),
        Config.optimized );
      ( "+bytecode",
        "flat bytecode program with an explicit backtrack stack",
        Passes.prune
          (Passes.factor_prefixes
             (Passes.fold_duplicates
                (Passes.inline_pass
                   (Passes.mark_terminals (Passes.mark_transients g))))),
        Config.vm );
    ]
  in
  List.mapi
    (fun index (name, detail, grammar, config) ->
      { index; name; detail; grammar; config })
    steps

let prepare_optimized ?inline_threshold g =
  Rats_runtime.Engine.prepare ~config:Config.optimized
    (optimize ?inline_threshold g)
