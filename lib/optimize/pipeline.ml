open Rats_peg
module Config = Rats_runtime.Config

type rung = {
  index : int;
  name : string;
  detail : string;
  grammar : Grammar.t;
  config : Config.t;
}

type step = {
  label : string;
  detail : string;
  passes : Pass.t list;
  config : Config.t -> Config.t;
  native_repetitions : bool;
}

let step ?(passes = []) ?(config = Fun.id) ?(native_repetitions = false) label
    detail =
  { label; detail; passes; config; native_repetitions }

(* THE canonical registry. Everything downstream — [optimize], the E3
   [ladder], [rml passes], the bench harness — is a prefix or a
   projection of this one ordered list; do not spell pass chains out
   anywhere else. *)
let registry ?inline_threshold () =
  [
    step "baseline" "desugared repetitions, hashtable memo of every production";
    step "+chunks" "memoize into per-position chunks instead of a hashtable"
      ~config:(fun c -> { c with Config.memo = Config.Chunked });
    step "+transients" "single-reference productions lose their memo slots"
      ~passes:[ Pass.transients ]
      ~config:(fun c -> { c with Config.honor_transient = true });
    step "+terminals" "lexical-level productions lose their memo slots"
      ~passes:[ Pass.terminals ];
    step "+repetitions" "repetitions run as loops instead of helper productions"
      ~native_repetitions:true;
    step "+inlining" "cost-based inlining of small non-recursive productions"
      ~passes:[ Pass.inline ?threshold:inline_threshold () ];
    step "+folding" "structurally equal productions merged"
      ~passes:[ Pass.fold ];
    step "+factoring" "common prefixes of adjacent alternatives factored"
      ~passes:[ Pass.factor; Pass.prune ];
    step "+dispatch" "choice alternatives filtered by FIRST sets"
      ~config:(fun c -> { c with Config.dispatch = true });
    step "+lean-values"
      "no semantic values in predicates, tokens, void productions"
      ~config:(fun c -> { c with Config.lean_values = true });
    step "+bytecode" "flat bytecode program with an explicit backtrack stack"
      ~config:(fun c -> { c with Config.backend = Config.Bytecode });
  ]

let passes ?inline_threshold () =
  List.concat_map (fun s -> s.passes) (registry ?inline_threshold ())

let optional_passes = [ Pass.leftrec ]

let all_passes ?inline_threshold () =
  passes ?inline_threshold () @ optional_passes

let find_pass name =
  List.find_opt (fun (p : Pass.t) -> String.equal p.name name) (all_passes ())

let optimize ?inline_threshold g =
  (Driver.run_exn ~gate:false (passes ?inline_threshold ()) g).Driver.grammar

let ladder ?inline_threshold g =
  let steps = registry ?inline_threshold () in
  let desugared = lazy (Desugar.expand_repetitions g) in
  let rec build index prefix config native acc = function
    | [] -> List.rev acc
    | s :: rest ->
        let native = native || s.native_repetitions in
        let prefix = prefix @ s.passes in
        let config = s.config config in
        let source = if native then g else Lazy.force desugared in
        let grammar = (Driver.run_exn ~gate:false prefix source).Driver.grammar in
        let rung = { index; name = s.label; detail = s.detail; grammar; config } in
        build (index + 1) prefix config native (rung :: acc) rest
  in
  build 0 [] Config.packrat false [] steps

let prepare_optimized ?inline_threshold g =
  match Driver.run (passes ?inline_threshold ()) g with
  | Error ds -> Error ds
  | Ok o -> Rats_runtime.Engine.prepare ~config:Config.optimized o.Driver.grammar
