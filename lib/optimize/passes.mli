(** Grammar-to-grammar optimization passes, one per optimization in the
    paper's ladder. All passes preserve the recognized language; all but
    {!factor_prefixes} (which reshapes only through the value-preserving
    [Splice] construct, so it too is value-safe) preserve semantic values
    bit for bit. Each pass is idempotent.

    Every analysis-consuming pass takes an optional [?ctx]: the shared
    {!Rats_peg.Analysis_ctx.t} the optimizer driver threads through a
    pipeline so FIRST sets, reference counts and reachability are
    computed once per structural change instead of once per pass. Called
    without it (or with a context for a different grammar), a pass
    simply analyzes its input itself — identical results, more work. *)

open Rats_peg

val prune : ?ctx:Analysis_ctx.t -> Grammar.t -> Grammar.t
(** Dead-production elimination: drop productions unreachable from the
    start symbol and the public productions. *)

val mark_transients : ?ctx:Analysis_ctx.t -> Grammar.t -> Grammar.t
(** Rats!'s {e transient productions}: flip [Memo_auto] to [Memo_never]
    for productions referenced at most once in the whole grammar — their
    results can never be demanded twice at the same position through
    different paths, so memoizing them only costs memory. Explicit
    [memoized] annotations are respected. *)

val mark_terminals : ?ctx:Analysis_ctx.t -> Grammar.t -> Grammar.t
(** Rats!'s {e terminal optimization}: productions that sit at the
    lexical level — transitively reference only character-level
    machinery, build no syntax-tree nodes and touch no parser state —
    are marked [Memo_never] (and thereby also run leanly when the engine
    has [lean_values]). This is where spacing, identifiers and literals
    stop paying packrat overhead. *)

val terminal_set : ?ctx:Analysis_ctx.t -> Grammar.t -> Analysis.StringSet.t
(** The productions {!mark_terminals} would mark (exposed for tests and
    statistics). *)

val inline_pass : ?threshold:int -> ?ctx:Analysis_ctx.t -> Grammar.t -> Grammar.t
(** Cost-based nonterminal inlining: replace references to small
    ([size <= threshold], default [12]), non-recursive productions by
    their bodies (wrapped according to the production kind so values are
    unchanged), then prune. [Inline_always]/[Inline_never] attributes
    override the cost heuristic. Productions whose expansion starts with
    a top-level binding are skipped (inlining them would leak the label
    into the host sequence). *)

val fold_duplicates : Grammar.t -> Grammar.t
(** Grammar folding: structurally identical private [Plain]/[Text]/[Void]
    productions of the same kind are merged into one, and references
    redirected. Runs to a fixed point. Generic productions are never
    folded — their name is part of their value. *)

val factor_prefixes : Grammar.t -> Grammar.t
(** Prefix factoring: rewrite [(a b / a c / d)] into
    [(a %splice(b / c) / d)] wherever adjacent alternatives share a
    structurally equal first element, recursively. Alternative labels
    inside a factored group are dropped, so this pass runs only after
    module composition. *)

val eliminate_left_recursion : Grammar.t -> Grammar.t
(** Rats!'s later "transformation of direct left recursion": a production

    {v  P = P t1 / ... / P tm / b1 / ... / bn  v}

    (in any alternative order) is rewritten into iteration,

    {v  P = (b1 / ... / bn) (t1 / ... / tm)*  v}

    which packrat parsing can execute, with the left-associative reading
    the author intended. The value is the base's value followed by the
    list of tail values (the shape the calculator grammar uses by hand).
    Only {e direct} left recursion (an alternative starting with a bare
    reference to the production itself) is transformed; indirect cycles
    are still rejected by {!Rats_peg.Analysis.check}. Labels of the
    rewritten alternatives are preserved on their tails. *)
