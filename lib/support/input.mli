(** Parse-time input buffers.

    An input is either an OCaml [string] or a char [Bigarray] (typically
    an mmap'd file, see {!map_file}). The constructors are exposed so
    performance-critical scan loops can match once on the representation
    and then run a monomorphic inner loop; ordinary consumers should use
    the accessors, which the compiler inlines into a two-way branch. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = Str of string | Big of bigstring

val of_string : string -> t
val of_bigstring : bigstring -> t

(** Byte length of the input. *)
val length : t -> int

(** [unsafe_get t i] reads byte [i] with no bounds check. *)
val unsafe_get : t -> int -> char

(** Bounds-checked byte access; raises [Invalid_argument]. *)
val get : t -> int -> char

(** [true] iff the input is Bigarray-backed (e.g. memory-mapped). *)
val is_bigarray : t -> bool

(** [sub_string t pos len] copies [len] bytes starting at [pos] into a
    fresh string; raises [Invalid_argument] out of range. *)
val sub_string : t -> int -> int -> string

(** Whole input as a string. O(1) for [Str]; copies for [Big]. *)
val to_string : t -> string

(** [blit_to_bytes src srcoff dst dstoff len] copies bytes out of the
    input; raises [Invalid_argument] out of range. *)
val blit_to_bytes : t -> int -> Bytes.t -> int -> int -> unit

(** [map_file path] memory-maps [path] read-only as a [Big] input.
    Empty files yield an empty Bigarray (mmap rejects zero-length
    mappings). Errors (missing file, permission, a path that cannot be
    mapped such as a pipe) are returned, not raised. *)
val map_file : string -> (t, string) result

(** Byte-wise equality across representations. *)
val equal : t -> t -> bool
