(** Deterministic fault injection for robustness testing.

    A fault plan describes failures to inject into a batch run: truncate
    or error a document read at a chosen byte, cap the fuel or memo
    budget so the existing govern brackets trip at a chosen invocation,
    or skew the deadline clock. Plans are seeded: whether a given
    document is faulted is a pure function of [(seed, document index)],
    so a chaos run replays exactly from its spec string.

    The layer is {e compiled out when absent} in the same sense as the
    observability hooks (PR 5): the engines know nothing about faults.
    Truncation and I/O faults act in the read path before an input
    buffer exists; fuel/memo faults are ordinary {e finite limits}
    handled by the governor both back ends already compile in; clock
    skew perturbs the batch runner's deadline reads. A parse with no
    plan runs byte-identical code to one where this module was never
    linked. *)

type fault =
  | Truncate of int
      (** deliver only the first [k] bytes of the document *)
  | Io_error of int
      (** fail the read once [k] bytes have been delivered (an
          end-of-file probe counts: a document of exactly [k] bytes
          still trips) *)
  | Fuel_cap of int  (** cap the fuel budget at [k] invocations *)
  | Memo_cap of int  (** cap the memo budget at [k] bytes *)
  | Clock_skew of int
      (** advance every deadline-clock reading after the first by [k]
          nanoseconds — simulates a clock step right after the deadline
          was armed *)

type t = {
  seed : int;
  rate_ppm : int;
      (** probability, in parts per million, that a given document
          receives the plan's faults; [1_000_000] = every document *)
  faults : fault list;
}

val none : t
(** The empty plan: no faults, nothing injected anywhere. *)

val is_none : t -> bool

val v : ?seed:int -> ?rate:float -> fault list -> t
(** [rate] (default [1.0]) is clamped to [0..1] and stored in ppm. *)

val active_for : t -> int -> fault list
(** The faults injected into document [index]: all of [t.faults] when
    the seeded coin lands under [rate_ppm], none otherwise. Pure in
    [(t.seed, t.rate_ppm, index)]. *)

(** {1 Plan accessors} — first matching fault, if any. *)

val truncate_at : fault list -> int option
val io_error_at : fault list -> int option
val fuel_cap : fault list -> int option
val memo_cap : fault list -> int option

val clock_skew_ns : fault list -> int
(** Summed skew; [0] when absent. *)

(** {1 Spec strings}

    The CLI surface: a comma-separated list of
    [seed=N], [rate=F], [trunc@N], [io@N], [fuel@N], [memo@N],
    [skew@NS] — e.g. ["seed=42,rate=0.25,trunc@512,fuel@10000"]. *)

val of_spec : string -> (t, string) result
val to_spec : t -> string
(** Round-trips through {!of_spec}. *)

val pp : Format.formatter -> t -> unit

(** {1 Guarded reads}

    The bounded, fault-aware read path shared by the batch runner and
    [rml parse --stdin]. *)

type read_error =
  | Too_large of int
      (** the stream exceeded the byte cap; the payload is the cap *)
  | Io_fault of string  (** injected or real I/O failure *)

val read_error_message : read_error -> string

val read_channel :
  ?cap:int ->
  ?faults:fault list ->
  in_channel ->
  (string, read_error) result
(** Chunked read of a whole channel that stops early: at an
    {!Io_error} point (failing), as soon as the stream exceeds [cap]
    bytes ([Too_large] — at most [cap + 1] bytes are ever buffered, so
    an unbounded stream cannot exhaust memory), or at a {!Truncate}
    point (delivering the prefix — unless that prefix is itself over
    [cap], which is [Too_large] like any other over-cap document).
    Real [Sys_error]s from the channel are returned as [Io_fault]. *)

val apply_to_string :
  ?cap:int -> ?faults:fault list -> string -> (string, read_error) result
(** The same contract over an already-materialized document (a
    delimited stream segment): truncation keeps the prefix, an
    {!Io_error} whose threshold the delivered bytes reach fails, a
    post-fault document longer than [cap] is [Too_large]. Agrees with
    {!read_channel} on every (document, cap, faults) triple. *)
