type t = { name : string; text : string; mutable line_starts : int array option }

type location = { line : int; col : int }

let of_string ?(name = "<string>") text = { name; text; line_starts = None }

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Ok (of_string ~name:path text)
  | exception Sys_error msg -> Error msg

let name s = s.name
let text s = s.text
let length s = String.length s.text

(* Offsets of every '\n' in [text.(lo, hi)], plus one, appended to a
   growable buffer — the shared scanner for first use and for the
   replacement window of [apply_edit]. *)
let scan_starts buf n text lo hi =
  let buf = ref buf and n = ref n in
  for i = lo to hi - 1 do
    if String.unsafe_get text i = '\n' then begin
      if !n = Array.length !buf then begin
        let b = Array.make (2 * !n) 0 in
        Array.blit !buf 0 b 0 !n;
        buf := b
      end;
      !buf.(!n) <- i + 1;
      incr n
    end
  done;
  (!buf, !n)

(* Offsets of the first byte of every line, computed on first use into a
   doubling int buffer (no per-line cons cells). *)
let line_starts s =
  match s.line_starts with
  | Some a -> a
  | None ->
      let buf = Array.make 16 0 in
      let buf, n = scan_starts buf 1 s.text 0 (String.length s.text) in
      let a = if n = Array.length buf then buf else Array.sub buf 0 n in
      s.line_starts <- Some a;
      a

let line_count s = Array.length (line_starts s)

(* Splice [replacement] over [old_len] bytes at [start]. The line-start
   table is patched, not rebuilt: a start at offset [p <= start] marks a
   '\n' (or the text head) before the damage and survives unchanged; one
   at [p >= start + old_len + 1] marks a '\n' at or past the damage end
   and shifts by the length delta; starts born inside the replaced
   window die, and the replacement itself is the only text scanned. *)
let apply_edit s ~start ~old_len ~replacement =
  let len = String.length s.text in
  if start < 0 || old_len < 0 || start + old_len > len then
    invalid_arg "Source.apply_edit";
  let new_len = String.length replacement in
  let b = Bytes.create (len - old_len + new_len) in
  Bytes.blit_string s.text 0 b 0 start;
  Bytes.blit_string replacement 0 b start new_len;
  Bytes.blit_string s.text (start + old_len) b (start + new_len)
    (len - start - old_len);
  let text = Bytes.unsafe_to_string b in
  let line_starts =
    match s.line_starts with
    | None -> None
    | Some a ->
        let n = Array.length a in
        let delta = new_len - old_len in
        (* Last index with a.(i) <= start; a.(0) = 0 <= start. *)
        let rec last lo hi =
          if lo >= hi then lo
          else
            let mid = (lo + hi + 1) / 2 in
            if a.(mid) <= start then last mid hi else last lo (mid - 1)
        in
        let keep = last 0 (n - 1) + 1 in
        (* First index with a.(i) >= start + old_len + 1. *)
        let rec first lo hi =
          if lo >= hi then lo
          else
            let mid = (lo + hi) / 2 in
            if a.(mid) >= start + old_len + 1 then first lo mid
            else first (mid + 1) hi
        in
        let suffix = first keep n in
        let buf = Array.make (max 16 keep) 0 in
        Array.blit a 0 buf 0 keep;
        let buf, m = scan_starts buf keep replacement 0 new_len in
        let out = Array.make (m + (n - suffix)) 0 in
        Array.blit buf 0 out 0 m;
        (* Replacement-window starts are replacement-relative. *)
        for i = keep to m - 1 do
          out.(i) <- out.(i) + start
        done;
        for i = suffix to n - 1 do
          out.(m + (i - suffix)) <- a.(i) + delta
        done;
        Some out
  in
  { name = s.name; text; line_starts }

let location s off =
  let off = max 0 (min off (String.length s.text)) in
  let starts = line_starts s in
  (* Binary search for the last line start <= off. *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if starts.(mid) <= off then go mid hi else go lo (mid - 1)
  in
  let line = go 0 (Array.length starts - 1) in
  { line = line + 1; col = off - starts.(line) + 1 }

let line_text s n =
  let starts = line_starts s in
  if n < 1 || n > Array.length starts then invalid_arg "Source.line_text";
  let start = starts.(n - 1) in
  let stop =
    if n < Array.length starts then starts.(n) else String.length s.text
  in
  let stop = if stop > start && s.text.[stop - 1] = '\n' then stop - 1 else stop in
  let stop = if stop > start && s.text.[stop - 1] = '\r' then stop - 1 else stop in
  String.sub s.text start (stop - start)

let slice s sp =
  let lo = max 0 (Span.start sp) in
  let hi = min (String.length s.text) (Span.stop sp) in
  if hi <= lo then "" else String.sub s.text lo (hi - lo)

let pp_location s ppf off =
  let { line; col } = location s off in
  Format.fprintf ppf "%s:%d:%d" s.name line col

let pp_excerpt s ppf sp =
  let { line; col } = location s (Span.start sp) in
  let text = line_text s line in
  (* [location] columns count terminator bytes, but [text] has them
     stripped: a span anchored on the [\n] of a CRLF ending would land
     the caret past the line. One column past the text means "at the
     line's end" for every terminator shape (LF, CRLF, none at EOF). *)
  let col = min col (String.length text + 1) in
  let width = max 1 (min (Span.length sp) (String.length text - col + 1)) in
  Format.fprintf ppf "@[<v>%s@,%s%s@]" text
    (String.make (col - 1) ' ')
    (String.make width '^')
