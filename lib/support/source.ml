type t = { name : string; input : Input.t; mutable line_starts : int array option }

type location = { line : int; col : int }

let of_input ?(name = "<input>") input = { name; input; line_starts = None }

let of_string ?(name = "<string>") text =
  { name; input = Input.of_string text; line_starts = None }

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Ok (of_string ~name:path text)
  | exception Sys_error msg -> Error msg

let map_file path =
  match Input.map_file path with
  | Ok input -> Ok (of_input ~name:path input)
  | Error _ as e -> e

let name s = s.name
let input s = s.input
let text s = Input.to_string s.input
let length s = Input.length s.input
let is_mapped s = Input.is_bigarray s.input

(* Offsets of every '\n' in [input.(lo, hi)], plus one, appended to a
   growable buffer — the shared scanner for first use and for the
   replacement window of [apply_edit]. *)
let scan_starts buf n input lo hi =
  let buf = ref buf and n = ref n in
  for i = lo to hi - 1 do
    if Input.unsafe_get input i = '\n' then begin
      if !n = Array.length !buf then begin
        let b = Array.make (2 * !n) 0 in
        Array.blit !buf 0 b 0 !n;
        buf := b
      end;
      !buf.(!n) <- i + 1;
      incr n
    end
  done;
  (!buf, !n)

(* Offsets of the first byte of every line, computed on first use into a
   doubling int buffer (no per-line cons cells). *)
let line_starts s =
  match s.line_starts with
  | Some a -> a
  | None ->
      let buf = Array.make 16 0 in
      let buf, n = scan_starts buf 1 s.input 0 (Input.length s.input) in
      let a = if n = Array.length buf then buf else Array.sub buf 0 n in
      s.line_starts <- Some a;
      a

let line_count s = Array.length (line_starts s)

(* Splice [replacement] over [old_len] bytes at [start]. The edited text
   is always string-backed, whatever the original representation — an
   edit over a mapped source materializes the patched document (copy on
   write) rather than mutating the mapping. The line-start table is
   patched, not rebuilt: a start at offset [p <= start] marks a '\n' (or
   the text head) before the damage and survives unchanged; one at
   [p >= start + old_len + 1] marks a '\n' at or past the damage end and
   shifts by the length delta; starts born inside the replaced window
   die, and the replacement itself is the only text scanned. *)
let apply_edit s ~start ~old_len ~replacement =
  let len = Input.length s.input in
  if start < 0 || old_len < 0 || start + old_len > len then
    invalid_arg "Source.apply_edit";
  let new_len = String.length replacement in
  let b = Bytes.create (len - old_len + new_len) in
  Input.blit_to_bytes s.input 0 b 0 start;
  Bytes.blit_string replacement 0 b start new_len;
  Input.blit_to_bytes s.input (start + old_len) b (start + new_len)
    (len - start - old_len);
  let input = Input.of_string (Bytes.unsafe_to_string b) in
  let line_starts =
    match s.line_starts with
    | None -> None
    | Some a ->
        let n = Array.length a in
        let delta = new_len - old_len in
        (* Last index with a.(i) <= start; a.(0) = 0 <= start. *)
        let rec last lo hi =
          if lo >= hi then lo
          else
            let mid = (lo + hi + 1) / 2 in
            if a.(mid) <= start then last mid hi else last lo (mid - 1)
        in
        let keep = last 0 (n - 1) + 1 in
        (* First index with a.(i) >= start + old_len + 1. *)
        let rec first lo hi =
          if lo >= hi then lo
          else
            let mid = (lo + hi) / 2 in
            if a.(mid) >= start + old_len + 1 then first lo mid
            else first (mid + 1) hi
        in
        let suffix = first keep n in
        let buf = Array.make (max 16 keep) 0 in
        Array.blit a 0 buf 0 keep;
        let buf, m =
          scan_starts buf keep (Input.of_string replacement) 0 new_len
        in
        let out = Array.make (m + (n - suffix)) 0 in
        Array.blit buf 0 out 0 m;
        (* Replacement-window starts are replacement-relative. *)
        for i = keep to m - 1 do
          out.(i) <- out.(i) + start
        done;
        for i = suffix to n - 1 do
          out.(m + (i - suffix)) <- a.(i) + delta
        done;
        Some out
  in
  { name = s.name; input; line_starts }

let location s off =
  let off = max 0 (min off (Input.length s.input)) in
  let starts = line_starts s in
  (* Binary search for the last line start <= off. *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if starts.(mid) <= off then go mid hi else go lo (mid - 1)
  in
  let line = go 0 (Array.length starts - 1) in
  { line = line + 1; col = off - starts.(line) + 1 }

let line_text s n =
  let starts = line_starts s in
  if n < 1 || n > Array.length starts then invalid_arg "Source.line_text";
  let start = starts.(n - 1) in
  let stop =
    if n < Array.length starts then starts.(n) else Input.length s.input
  in
  let stop =
    if stop > start && Input.unsafe_get s.input (stop - 1) = '\n' then stop - 1
    else stop
  in
  let stop =
    if stop > start && Input.unsafe_get s.input (stop - 1) = '\r' then stop - 1
    else stop
  in
  Input.sub_string s.input start (stop - start)

let slice s sp =
  let lo = max 0 (Span.start sp) in
  let hi = min (Input.length s.input) (Span.stop sp) in
  if hi <= lo then "" else Input.sub_string s.input lo (hi - lo)

let pp_location s ppf off =
  let { line; col } = location s off in
  Format.fprintf ppf "%s:%d:%d" s.name line col

let pp_excerpt s ppf sp =
  let { line; col } = location s (Span.start sp) in
  let text = line_text s line in
  (* [location] columns count terminator bytes, but [text] has them
     stripped: a span anchored on the [\n] of a CRLF ending would land
     the caret past the line. One column past the text means "at the
     line's end" for every terminator shape (LF, CRLF, none at EOF). *)
  let col = min col (String.length text + 1) in
  let width = max 1 (min (Span.length sp) (String.length text - col + 1)) in
  Format.fprintf ppf "@[<v>%s@,%s%s@]" text
    (String.make (col - 1) ' ')
    (String.make width '^')
