type t = { name : string; text : string; mutable line_starts : int array option }

type location = { line : int; col : int }

let of_string ?(name = "<string>") text = { name; text; line_starts = None }

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Ok (of_string ~name:path text)
  | exception Sys_error msg -> Error msg

let name s = s.name
let text s = s.text
let length s = String.length s.text

(* Offsets of the first byte of every line, computed on first use. *)
let line_starts s =
  match s.line_starts with
  | Some a -> a
  | None ->
      let acc = ref [ 0 ] in
      String.iteri (fun i c -> if c = '\n' then acc := (i + 1) :: !acc) s.text;
      let a = Array.of_list (List.rev !acc) in
      s.line_starts <- Some a;
      a

let line_count s = Array.length (line_starts s)

let location s off =
  let off = max 0 (min off (String.length s.text)) in
  let starts = line_starts s in
  (* Binary search for the last line start <= off. *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if starts.(mid) <= off then go mid hi else go lo (mid - 1)
  in
  let line = go 0 (Array.length starts - 1) in
  { line = line + 1; col = off - starts.(line) + 1 }

let line_text s n =
  let starts = line_starts s in
  if n < 1 || n > Array.length starts then invalid_arg "Source.line_text";
  let start = starts.(n - 1) in
  let stop =
    if n < Array.length starts then starts.(n) else String.length s.text
  in
  let stop = if stop > start && s.text.[stop - 1] = '\n' then stop - 1 else stop in
  let stop = if stop > start && s.text.[stop - 1] = '\r' then stop - 1 else stop in
  String.sub s.text start (stop - start)

let slice s sp =
  let lo = max 0 (Span.start sp) in
  let hi = min (String.length s.text) (Span.stop sp) in
  if hi <= lo then "" else String.sub s.text lo (hi - lo)

let pp_location s ppf off =
  let { line; col } = location s off in
  Format.fprintf ppf "%s:%d:%d" s.name line col

let pp_excerpt s ppf sp =
  let { line; col } = location s (Span.start sp) in
  let text = line_text s line in
  (* [location] columns count terminator bytes, but [text] has them
     stripped: a span anchored on the [\n] of a CRLF ending would land
     the caret past the line. One column past the text means "at the
     line's end" for every terminator shape (LF, CRLF, none at EOF). *)
  let col = min col (String.length text + 1) in
  let width = max 1 (min (Span.length sp) (String.length text - col + 1)) in
  Format.fprintf ppf "@[<v>%s@,%s%s@]" text
    (String.make (col - 1) ' ')
    (String.make width '^')
