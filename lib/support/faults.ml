type fault =
  | Truncate of int
  | Io_error of int
  | Fuel_cap of int
  | Memo_cap of int
  | Clock_skew of int

type t = { seed : int; rate_ppm : int; faults : fault list }

let none = { seed = 0; rate_ppm = 1_000_000; faults = [] }
let is_none t = t.faults = []

let clamp_ppm r =
  let r = if Float.is_nan r then 0. else r in
  let r = Float.max 0. (Float.min 1. r) in
  int_of_float ((r *. 1e6) +. 0.5)

let v ?(seed = 0) ?(rate = 1.0) faults = { seed; rate_ppm = clamp_ppm rate; faults }

(* Document selection must be a pure function of (seed, index) so a
   chaos run replays from its spec alone; splitmix gives us that from
   the support layer's own Rng. *)
let active_for t index =
  if t.faults = [] then []
  else if t.rate_ppm >= 1_000_000 then t.faults
  else
    let rng = Rng.create ((t.seed * 0x1000193) lxor (index * 0x9E3779B9)) in
    if Rng.int rng 1_000_000 < t.rate_ppm then t.faults else []

let first f faults =
  List.find_map (fun x -> match f x with Some n -> Some (max 0 n) | None -> None) faults

let truncate_at fs = first (function Truncate n -> Some n | _ -> None) fs
let io_error_at fs = first (function Io_error n -> Some n | _ -> None) fs
let fuel_cap fs = first (function Fuel_cap n -> Some n | _ -> None) fs
let memo_cap fs = first (function Memo_cap n -> Some n | _ -> None) fs

let clock_skew_ns fs =
  List.fold_left (fun acc -> function Clock_skew n -> acc + max 0 n | _ -> acc) 0 fs

(* Spec strings *)

let fault_to_string = function
  | Truncate n -> Printf.sprintf "trunc@%d" n
  | Io_error n -> Printf.sprintf "io@%d" n
  | Fuel_cap n -> Printf.sprintf "fuel@%d" n
  | Memo_cap n -> Printf.sprintf "memo@%d" n
  | Clock_skew n -> Printf.sprintf "skew@%d" n

let to_spec t =
  let parts = Printf.sprintf "seed=%d" t.seed :: List.map fault_to_string t.faults in
  let parts =
    if t.rate_ppm >= 1_000_000 then parts
    else
      Printf.sprintf "seed=%d" t.seed
      :: Printf.sprintf "rate=%.6f" (float_of_int t.rate_ppm /. 1e6)
      :: List.map fault_to_string t.faults
  in
  String.concat "," parts

let pp ppf t = Format.pp_print_string ppf (to_spec t)

let of_spec s =
  let exception Bad of string in
  let nonneg item n =
    match int_of_string_opt n with
    | Some k when k >= 0 -> k
    | _ -> raise (Bad (Printf.sprintf "%S: expected a non-negative integer" item))
  in
  let items =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  try
    let seed = ref 0 and rate = ref 1_000_000 and faults = ref [] in
    List.iter
      (fun item ->
        match String.index_opt item '=' with
        | Some i -> (
            let key = String.sub item 0 i
            and value = String.sub item (i + 1) (String.length item - i - 1) in
            match key with
            | "seed" -> (
                match int_of_string_opt value with
                | Some k -> seed := k
                | None -> raise (Bad (Printf.sprintf "%S: expected an integer" item)))
            | "rate" -> (
                match float_of_string_opt value with
                | Some r when r >= 0. && r <= 1. -> rate := clamp_ppm r
                | _ -> raise (Bad (Printf.sprintf "%S: expected a float in 0..1" item)))
            | _ -> raise (Bad (Printf.sprintf "unknown key %S" key)))
        | None -> (
            match String.index_opt item '@' with
            | None ->
                raise
                  (Bad
                     (Printf.sprintf
                        "%S: expected KEY=VALUE or FAULT@N (trunc, io, fuel, memo, skew)"
                        item))
            | Some i -> (
                let kind = String.sub item 0 i
                and arg = String.sub item (i + 1) (String.length item - i - 1) in
                let n = nonneg item arg in
                match kind with
                | "trunc" | "truncate" -> faults := Truncate n :: !faults
                | "io" -> faults := Io_error n :: !faults
                | "fuel" -> faults := Fuel_cap n :: !faults
                | "memo" -> faults := Memo_cap n :: !faults
                | "skew" -> faults := Clock_skew n :: !faults
                | _ -> raise (Bad (Printf.sprintf "unknown fault %S" kind)))))
      items;
    Ok { seed = !seed; rate_ppm = !rate; faults = List.rev !faults }
  with Bad m -> Error (Printf.sprintf "bad fault spec: %s" m)

(* Guarded reads *)

type read_error = Too_large of int | Io_fault of string

let read_error_message = function
  | Too_large cap -> Printf.sprintf "input exceeds the %d-byte cap" cap
  | Io_fault m -> m

let injected_msg k = Printf.sprintf "injected I/O fault after %d bytes" k

(* Both readers implement the same event order as the stream grows:
   the io fault wins ties at a given byte count, then the cap trips
   once count exceeds it, then truncation stops delivery — the cap
   outranks truncation so a truncated prefix that is itself over the
   cap is rejected, exactly as [apply_to_string] judges the delivered
   document. [read_channel] never buffers more than [cap + 1] bytes. *)
let read_channel ?(cap = max_int) ?(faults = []) ic =
  let trunc = Option.value (truncate_at faults) ~default:max_int in
  let io_at = Option.value (io_error_at faults) ~default:max_int in
  let chunk = Bytes.create 65536 in
  let buf = Buffer.create 4096 in
  let rec loop count =
    if io_at <= count then Error (Io_fault (injected_msg io_at))
    else if count > cap then Error (Too_large cap)
    else if count >= trunc then Ok (Buffer.contents buf)
    else
      let want = Bytes.length chunk in
      let want = min want (trunc - count) in
      let want = min want (io_at - count) in
      let want = if cap >= max_int - 1 then want else min want (cap + 1 - count) in
      match In_channel.input ic chunk 0 want with
      | 0 -> Ok (Buffer.contents buf)
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          loop (count + n)
      | exception Sys_error m -> Error (Io_fault m)
  in
  loop 0

let apply_to_string ?(cap = max_int) ?(faults = []) s =
  let len = String.length s in
  let trunc = Option.value (truncate_at faults) ~default:max_int in
  let io_at = Option.value (io_error_at faults) ~default:max_int in
  let delivered = min len trunc in
  if io_at <= min delivered (if cap >= max_int - 1 then max_int else cap + 1) then
    Error (Io_fault (injected_msg io_at))
  else if delivered > cap then Error (Too_large cap)
  else if delivered < len then Ok (String.sub s 0 delivered)
  else Ok s
