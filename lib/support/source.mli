(** Named source texts with line/column resolution.

    A [Source.t] wraps the raw text of a grammar file or parser input
    together with a display name and a lazily built index of line starts,
    so byte offsets (and {!Span.t} values) can be rendered as
    [file:line:col] locations and quoted excerpts. *)

type t

type location = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column (byte) number *)
}

val of_string : ?name:string -> string -> t
(** [of_string ~name text] is a source called [name] (default
    ["<string>"]) holding [text]. *)

val of_input : ?name:string -> Input.t -> t
(** [of_input ~name input] is a source called [name] (default
    ["<input>"]) over an existing {!Input.t} buffer, shared without
    copying. *)

val read_file : string -> (t, string) result
(** [read_file path] reads [path] into a string-backed source named
    [path]. *)

val map_file : string -> (t, string) result
(** [map_file path] memory-maps [path] into a Bigarray-backed source
    named [path] — the file bytes are never copied into the OCaml heap.
    See {!Input.map_file} for error cases. *)

val name : t -> string

val input : t -> Input.t
(** The underlying buffer, shared without copying. *)

val text : t -> string
(** The source text as a string. O(1) for string-backed sources; copies
    the whole buffer for mapped ones — prefer {!input} on hot paths. *)

val length : t -> int

val is_mapped : t -> bool
(** [true] iff the source is Bigarray-backed (see {!map_file}). *)

val apply_edit : t -> start:int -> old_len:int -> replacement:string -> t
(** [apply_edit src ~start ~old_len ~replacement] is a source holding
    [src]'s text with the [old_len] bytes at [start] replaced by
    [replacement]. If [src]'s line-start index has been built it is
    patched — starts before the damage are shared, starts past it are
    shifted by the length delta, and only [replacement] is scanned —
    instead of recomputed from the whole text. The result is always
    string-backed: editing a mapped source copies the patched document
    onto the heap (copy on write) and never mutates the mapping. Raises
    [Invalid_argument] when the edit is out of bounds. *)

val location : t -> int -> location
(** [location src off] resolves byte offset [off] (clamped to the text) to
    a line/column pair. *)

val line_count : t -> int

val line_text : t -> int -> string
(** [line_text src n] is the text of 1-based line [n], without its
    terminating newline. Raises [Invalid_argument] if out of range. *)

val slice : t -> Span.t -> string
(** [slice src sp] is the text covered by [sp], clamped to the source. *)

val pp_location : t -> Format.formatter -> int -> unit
(** [pp_location src ppf off] prints ["name:line:col"]. *)

val pp_excerpt : t -> Format.formatter -> Span.t -> unit
(** [pp_excerpt src ppf sp] prints the first line touched by [sp] with a
    caret marker underneath, as compilers do. *)
