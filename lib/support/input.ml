type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* The two constructors are public (input.mli) so the engines' hottest
   loops can hoist the representation match outside a scan; everything
   else goes through the accessors below, which are small enough for
   the compiler to inline cross-module into a two-way branch — this
   build has no flambda, so a functorized byte layer would instead cost
   an indirect call per probe. *)
type t = Str of string | Big of bigstring

let of_string s = Str s
let of_bigstring b = Big b

let length = function
  | Str s -> String.length s
  | Big b -> Bigarray.Array1.dim b

let[@inline] unsafe_get t i =
  match t with
  | Str s -> String.unsafe_get s i
  | Big b -> Bigarray.Array1.unsafe_get b i

let get t i =
  if i < 0 || i >= length t then invalid_arg "Input.get";
  unsafe_get t i

let is_bigarray = function Str _ -> false | Big _ -> true

let blit_to_bytes src srcoff dst dstoff len =
  match src with
  | Str s -> Bytes.blit_string s srcoff dst dstoff len
  | Big b ->
      if
        srcoff < 0 || len < 0
        || srcoff + len > Bigarray.Array1.dim b
        || dstoff < 0
        || dstoff + len > Bytes.length dst
      then invalid_arg "Input.blit_to_bytes";
      for i = 0 to len - 1 do
        Bytes.unsafe_set dst (dstoff + i) (Bigarray.Array1.unsafe_get b (srcoff + i))
      done

let sub_string t pos len =
  match t with
  | Str s -> String.sub s pos len
  | Big b ->
      if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim b then
        invalid_arg "Input.sub_string";
      let dst = Bytes.create len in
      for i = 0 to len - 1 do
        Bytes.unsafe_set dst i (Bigarray.Array1.unsafe_get b (pos + i))
      done;
      Bytes.unsafe_to_string dst

let to_string = function
  | Str s -> s
  | Big b -> sub_string (Big b) 0 (Bigarray.Array1.dim b)

let map_file path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | fd -> (
      let finish r =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        r
      in
      match (Unix.fstat fd).Unix.st_size with
      | exception Unix.Unix_error (e, _, _) ->
          finish (Error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
      | 0 ->
          (* mmap rejects zero-length mappings; an empty bigstring keeps
             the representation (and [is_bigarray]) honest *)
          finish (Ok (Big (Bigarray.Array1.create Bigarray.char Bigarray.c_layout 0)))
      | _ -> (
          match
            Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |]
          with
          | genarray -> finish (Ok (Big (Bigarray.array1_of_genarray genarray)))
          | exception Unix.Unix_error (e, _, _) ->
              finish
                (Error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
          | exception Sys_error msg -> finish (Error (path ^ ": " ^ msg))))

let equal a b =
  let n = length a in
  n = length b
  &&
  let rec go i = i >= n || (unsafe_get a i = unsafe_get b i && go (i + 1)) in
  go 0
