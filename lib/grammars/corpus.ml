open Rats_support

let buf_add = Buffer.add_string

(* --- arithmetic ----------------------------------------------------------- *)

let arith rng ~size =
  let buf = Buffer.create (size * 4) in
  let rec go n =
    if n <= 1 then buf_add buf (string_of_int (Rng.in_range rng 0 999))
    else
      match Rng.int rng 6 with
      | 0 ->
          Buffer.add_char buf '(';
          go (n - 1);
          Buffer.add_char buf ')'
      | 1 ->
          let left = max 1 (n / 3) in
          go left;
          buf_add buf " ** ";
          go (n - left - 1)
      | k ->
          let left = max 1 (n / 2) in
          go left;
          buf_add buf
            (match k with 2 -> " + " | 3 -> " - " | 4 -> " * " | _ -> " / ");
          go (n - left)
  in
  go size;
  Buffer.contents buf

(* --- JSON ------------------------------------------------------------------ *)

let json_key rng i = Printf.sprintf "\"k%d_%d\"" i (Rng.int rng 100)

let json rng ~size =
  let buf = Buffer.create (size * 12) in
  let rec value n depth =
    if n <= 1 || depth > 6 then
      match Rng.int rng 5 with
      | 0 -> buf_add buf (string_of_int (Rng.in_range rng (-1000) 1000))
      | 1 -> buf_add buf (Printf.sprintf "%d.%d" (Rng.int rng 100) (Rng.int rng 100))
      | 2 -> buf_add buf (Printf.sprintf "\"s%d\"" (Rng.int rng 10000))
      | 3 -> buf_add buf (if Rng.bool rng then "true" else "false")
      | _ -> buf_add buf "null"
    else if Rng.bool rng then (
      (* object *)
      let fields = min (Rng.in_range rng 1 5) n in
      Buffer.add_char buf '{';
      let share = max 1 ((n - 1) / fields) in
      for i = 0 to fields - 1 do
        if i > 0 then buf_add buf ", ";
        buf_add buf (json_key rng i);
        buf_add buf ": ";
        value share (depth + 1)
      done;
      Buffer.add_char buf '}')
    else (
      let items = min (Rng.in_range rng 1 6) n in
      Buffer.add_char buf '[';
      let share = max 1 ((n - 1) / items) in
      for i = 0 to items - 1 do
        if i > 0 then buf_add buf ", ";
        value share (depth + 1)
      done;
      Buffer.add_char buf ']')
  in
  value size 0;
  Buffer.contents buf

(* --- MiniC ------------------------------------------------------------------ *)

type mc = {
  rng : Rng.t;
  buf : Buffer.t;
  mutable indent : int;
  mutable locals : string list;  (* in-scope variable names *)
  mutable fns : string list;  (* defined function names *)
  extended : bool;
}

let line mc s =
  buf_add mc.buf (String.make (mc.indent * 2) ' ');
  buf_add mc.buf s;
  Buffer.add_char mc.buf '\n'

let pick_local mc =
  match mc.locals with
  | [] -> string_of_int (Rng.int mc.rng 100)
  | ls -> Rng.pick mc.rng (Array.of_list ls)

let rec expr mc n =
  if n <= 1 then
    match Rng.int mc.rng 6 with
    | 0 -> string_of_int (Rng.int mc.rng 1000)
    | 1 -> Printf.sprintf "%d.%d" (Rng.int mc.rng 50) (Rng.int mc.rng 100)
    | 2 -> pick_local mc
    | 3 -> Printf.sprintf "\"str%d\"" (Rng.int mc.rng 100)
    | 4 -> Printf.sprintf "'%c'" (Char.chr (Rng.in_range mc.rng 97 122))
    | _ -> pick_local mc
  else
    match Rng.int mc.rng (if mc.extended then 12 else 10) with
    | 0 -> Printf.sprintf "(%s)" (expr mc (n - 1))
    | 1 ->
        Printf.sprintf "%s(%s)"
          (match mc.fns with
          | [] -> "f0"
          | fs -> Rng.pick mc.rng (Array.of_list fs))
          (if n > 2 then expr mc (n / 2) else "")
    | 2 -> Printf.sprintf "%s[%s]" (pick_local mc) (expr mc (n - 1))
    | 3 -> Printf.sprintf "!%s" (expr mc (n - 1))
    | 4 -> Printf.sprintf "-%s" (expr mc (n - 1))
    | 5 ->
        Printf.sprintf "%s %s %s" (expr mc (n / 2))
          (Rng.pick mc.rng [| "+"; "-"; "*"; "/"; "%" |])
          (expr mc (n - (n / 2)))
    | 6 ->
        Printf.sprintf "%s %s %s" (expr mc (n / 2))
          (Rng.pick mc.rng [| "<"; ">"; "<="; ">="; "=="; "!=" |])
          (expr mc (n - (n / 2)))
    | 7 ->
        Printf.sprintf "%s %s %s" (expr mc (n / 2))
          (Rng.pick mc.rng [| "&&"; "||" |])
          (expr mc (n - (n / 2)))
    | 8 -> Printf.sprintf "%s++" (pick_local mc)
    | 9 ->
        if Rng.bool mc.rng then Printf.sprintf "sizeof(%s)" (expr mc (n - 1))
        else
          Printf.sprintf "(%s)%s"
            (Rng.pick mc.rng [| "int"; "double"; "myint_t"; "unsigned long" |])
            (expr mc (n - 1))
    | 10 -> Printf.sprintf "%s ** %s" (expr mc (n / 2)) (expr mc (n - (n / 2)))
    | _ ->
        Printf.sprintf "query { select a, b from t%d where %s }"
          (Rng.int mc.rng 10) (expr mc (n - 1))

let fresh_var mc =
  let v = Printf.sprintf "v%d" (List.length mc.locals) in
  mc.locals <- v :: mc.locals;
  v

let rec statement mc depth =
  match Rng.int mc.rng (if mc.extended then 11 else 10) with
  | 0 when depth < 3 ->
      line mc "{";
      mc.indent <- mc.indent + 1;
      let saved = mc.locals in
      for _ = 1 to Rng.in_range mc.rng 1 3 do
        statement mc (depth + 1)
      done;
      mc.locals <- saved;
      mc.indent <- mc.indent - 1;
      line mc "}"
  | 1 when depth < 3 ->
      line mc (Printf.sprintf "if (%s)" (expr mc 3));
      mc.indent <- mc.indent + 1;
      statement mc (depth + 1);
      mc.indent <- mc.indent - 1;
      if Rng.bool mc.rng then (
        line mc "else";
        mc.indent <- mc.indent + 1;
        statement mc (depth + 1);
        mc.indent <- mc.indent - 1)
  | 2 when depth < 3 ->
      line mc (Printf.sprintf "while (%s)" (expr mc 3));
      mc.indent <- mc.indent + 1;
      statement mc (depth + 1);
      mc.indent <- mc.indent - 1
  | 3 when depth < 3 ->
      line mc "do";
      mc.indent <- mc.indent + 1;
      statement mc (depth + 1);
      mc.indent <- mc.indent - 1;
      line mc (Printf.sprintf "while (%s);" (expr mc 2))
  | 4 when depth < 3 ->
      let v = pick_local mc in
      line mc
        (Printf.sprintf "for (%s = 0; %s < %s; %s++)" v v
           (string_of_int (Rng.in_range mc.rng 1 100))
           v);
      mc.indent <- mc.indent + 1;
      statement mc (depth + 1);
      mc.indent <- mc.indent - 1
  | 5 -> line mc (Printf.sprintf "return %s;" (expr mc 3))
  | 6 ->
      let v = fresh_var mc in
      line mc
        (Printf.sprintf "%s %s = %s;"
           (Rng.pick mc.rng
              [| "int"; "long"; "unsigned int"; "char"; "double"; "myint_t" |])
           v (expr mc 2))
  | 7 -> line mc (Printf.sprintf "%s = %s;" (pick_local mc) (expr mc 3))
  | 8 -> line mc (Printf.sprintf "%s;" (expr mc 4))
  | 9 ->
      if Rng.bool mc.rng then
        line mc (Printf.sprintf "%s += %s;" (pick_local mc) (expr mc 2))
      else if Rng.bool mc.rng && depth = 0 then (
        (* Two statements; only valid where a statement list is allowed. *)
        let l = Printf.sprintf "lbl%d" (Rng.int mc.rng 10) in
        line mc (Printf.sprintf "%s: %s;" l (expr mc 2));
        line mc (Printf.sprintf "goto %s;" l))
      else (
        line mc (Printf.sprintf "switch (%s) {" (pick_local mc));
        mc.indent <- mc.indent + 1;
        for k = 0 to Rng.in_range mc.rng 0 2 do
          line mc (Printf.sprintf "case %d:" k);
          mc.indent <- mc.indent + 1;
          line mc (Printf.sprintf "%s = %s;" (pick_local mc) (expr mc 2));
          line mc "break;";
          mc.indent <- mc.indent - 1
        done;
        line mc "default:";
        mc.indent <- mc.indent + 1;
        line mc "break;";
        mc.indent <- mc.indent - 1;
        mc.indent <- mc.indent - 1;
        line mc "}")
  | 10 when depth < 3 ->
      line mc (Printf.sprintf "until (%s)" (expr mc 2));
      mc.indent <- mc.indent + 1;
      statement mc (depth + 1);
      mc.indent <- mc.indent - 1
  | _ -> line mc (Printf.sprintf "%s;" (expr mc 3))

let minic_program rng ~functions ~extended =
  let mc =
    { rng; buf = Buffer.create 4096; indent = 0; locals = []; fns = []; extended }
  in
  line mc "// synthetic MiniC program";
  line mc "typedef unsigned int myint_t;";
  line mc "typedef myint_t *handle_t;";
  line mc "";
  line mc "struct point { int x; int y; myint_t tag; };";
  line mc "";
  line mc "int g_counter = 0;";
  line mc "myint_t g_limit = 100;";
  line mc "";
  for i = 0 to functions - 1 do
    let name = Printf.sprintf "f%d" i in
    mc.locals <- [ "a"; "b" ];
    line mc
      (Printf.sprintf "%s %s(int a, myint_t b) {"
         (Rng.pick rng [| "int"; "myint_t"; "double"; "void" |])
         name);
    mc.indent <- 1;
    for _ = 1 to Rng.in_range rng 3 8 do
      statement mc 0
    done;
    line mc (Printf.sprintf "return %s;" (expr mc 2));
    mc.indent <- 0;
    line mc "}";
    line mc "";
    mc.fns <- name :: mc.fns
  done;
  Buffer.contents mc.buf

let minic rng ~functions = minic_program rng ~functions ~extended:false
let minic_extended rng ~functions = minic_program rng ~functions ~extended:true

let pathological ~depth =
  String.make depth '(' ^ "1" ^ String.make depth ')'

(* --- adversarial ------------------------------------------------------------ *)

let adversarial ~scale =
  let repeat n s =
    let buf = Buffer.create (n * String.length s) in
    for _ = 1 to n do
      buf_add buf s
    done;
    Buffer.contents buf
  in
  [
    (* Recursion depth proportional to input length; parses cleanly. *)
    ("deep-nest", pathological ~depth:scale);
    (* Same nesting but never closed: fails at end of input after
       descending [scale] levels, exercising failure paths at depth. *)
    ("deep-unclosed", String.make scale '(' ^ "1");
    (* Deep *and* branching at every level — each '(' commits to the
       sum alternative before the nested parse resolves. *)
    ("nest-chain", repeat scale "(1+" ^ "1" ^ repeat scale ")");
    (* Flat but long: linear fuel burn with bounded depth, the control
       case that must NOT trip a depth limit. *)
    ("wide-chain", "1" ^ repeat scale "+1");
    (* Almost-parses: a long valid prefix with a dangling operator, so
       the farthest failure sits at the very end after full backtrack. *)
    ("trailing-junk", "1" ^ repeat scale "+1" ^ "+");
  ]

(* --- MiniJava ----------------------------------------------------------------- *)

type mj = {
  jrng : Rng.t;
  jbuf : Buffer.t;
  mutable jindent : int;
  mutable jlocals : string list;
  mutable jmethods : string list;
}

let jline mj s =
  buf_add mj.jbuf (String.make (mj.jindent * 2) ' ');
  buf_add mj.jbuf s;
  Buffer.add_char mj.jbuf '\n'

let jpick mj =
  match mj.jlocals with
  | [] -> string_of_int (Rng.int mj.jrng 100)
  | ls -> Rng.pick mj.jrng (Array.of_list ls)

let jtype mj =
  Rng.pick mj.jrng [| "int"; "boolean"; "double"; "char"; "Point"; "int[]" |]

let rec jexpr mj n =
  if n <= 1 then
    match Rng.int mj.jrng 8 with
    | 0 -> string_of_int (Rng.int mj.jrng 1000)
    | 1 -> Printf.sprintf "%d.%d" (Rng.int mj.jrng 50) (Rng.int mj.jrng 100)
    | 2 -> "true"
    | 3 -> "false"
    | 4 -> "null"
    | 5 -> "this"
    | 6 -> Printf.sprintf "\"s%d\"" (Rng.int mj.jrng 100)
    | _ -> jpick mj
  else
    match Rng.int mj.jrng 10 with
    | 0 -> Printf.sprintf "(%s)" (jexpr mj (n - 1))
    | 1 ->
        Printf.sprintf "%s(%s)"
          (match mj.jmethods with
          | [] -> "helper"
          | ms -> Rng.pick mj.jrng (Array.of_list ms))
          (if n > 2 then jexpr mj (n / 2) else "")
    | 2 -> Printf.sprintf "this.%s(%s)" "size" (jexpr mj (n / 2))
    | 3 -> Printf.sprintf "%s.%s" (jpick mj) "length"
    | 4 -> Printf.sprintf "%s[%s]" (jpick mj) (jexpr mj (n - 1))
    | 5 -> Printf.sprintf "new Point(%s)" (jexpr mj (n / 2))
    | 6 -> Printf.sprintf "new int[%s]" (jexpr mj (n - 1))
    | 7 ->
        Printf.sprintf "%s %s %s" (jexpr mj (n / 2))
          (Rng.pick mj.jrng [| "+"; "-"; "*"; "/"; "%" |])
          (jexpr mj (n - (n / 2)))
    | 8 ->
        Printf.sprintf "%s %s %s" (jexpr mj (n / 2))
          (Rng.pick mj.jrng [| "<"; ">"; "=="; "!="; "&&"; "||" |])
          (jexpr mj (n - (n / 2)))
    | _ -> Printf.sprintf "!%s" (jexpr mj (n - 1))

let jfresh mj =
  let v = Printf.sprintf "x%d" (List.length mj.jlocals) in
  mj.jlocals <- v :: mj.jlocals;
  v

let rec jstatement mj depth =
  match Rng.int mj.jrng 9 with
  | 0 when depth < 3 ->
      jline mj "{";
      mj.jindent <- mj.jindent + 1;
      let saved = mj.jlocals in
      for _ = 1 to Rng.in_range mj.jrng 1 3 do
        jstatement mj (depth + 1)
      done;
      mj.jlocals <- saved;
      mj.jindent <- mj.jindent - 1;
      jline mj "}"
  | 1 when depth < 3 ->
      jline mj (Printf.sprintf "if (%s)" (jexpr mj 3));
      mj.jindent <- mj.jindent + 1;
      jstatement mj (depth + 1);
      mj.jindent <- mj.jindent - 1;
      if Rng.bool mj.jrng then (
        jline mj "else";
        mj.jindent <- mj.jindent + 1;
        jstatement mj (depth + 1);
        mj.jindent <- mj.jindent - 1)
  | 2 when depth < 3 ->
      jline mj (Printf.sprintf "while (%s)" (jexpr mj 3));
      mj.jindent <- mj.jindent + 1;
      jstatement mj (depth + 1);
      mj.jindent <- mj.jindent - 1
  | 3 when depth < 3 ->
      let v = jpick mj in
      jline mj
        (Printf.sprintf "for (int i%d = 0; i%d < %s; i%d++)"
           depth depth v depth);
      mj.jindent <- mj.jindent + 1;
      jstatement mj (depth + 1);
      mj.jindent <- mj.jindent - 1
  | 4 -> jline mj (Printf.sprintf "return %s;" (jexpr mj 3))
  | 5 ->
      let v = jfresh mj in
      jline mj (Printf.sprintf "%s %s = %s;" (jtype mj) v (jexpr mj 2))
  | 6 -> jline mj (Printf.sprintf "%s = %s;" (jpick mj) (jexpr mj 3))
  | 7 -> jline mj (Printf.sprintf "%s;" (jexpr mj 4))
  | _ -> jline mj (Printf.sprintf "%s++;" (jpick mj))

let minijava rng ~classes =
  let mj =
    { jrng = rng; jbuf = Buffer.create 4096; jindent = 0; jlocals = [];
      jmethods = [] }
  in
  jline mj "// synthetic MiniJava program";
  jline mj "class Point {";
  mj.jindent <- 1;
  jline mj "int x;";
  jline mj "int y;";
  jline mj "static int count = 0;";
  jline mj "int size(int scale) { return this.x * scale + this.y; }";
  mj.jindent <- 0;
  jline mj "}";
  jline mj "";
  mj.jmethods <- [ "size" ];
  for i = 0 to classes - 1 do
    jline mj (Printf.sprintf "class C%d extends Point {" i);
    mj.jindent <- 1;
    for _ = 1 to Rng.in_range rng 1 3 do
      jline mj
        (Printf.sprintf "%s f%d = %s;" (jtype mj) (Rng.int rng 100)
           (jexpr mj 2))
    done;
    for m = 0 to Rng.in_range rng 1 3 do
      let name = Printf.sprintf "m%d_%d" i m in
      mj.jlocals <- [ "a"; "b" ];
      jline mj
        (Printf.sprintf "%s %s(int a, double b) {" (jtype mj) name);
      mj.jindent <- mj.jindent + 1;
      for _ = 1 to Rng.in_range rng 2 6 do
        jstatement mj 0
      done;
      jline mj (Printf.sprintf "return %s;" (jexpr mj 2));
      mj.jindent <- mj.jindent - 1;
      jline mj "}";
      mj.jmethods <- name :: mj.jmethods
    done;
    mj.jindent <- 0;
    jline mj "}";
    jline mj ""
  done;
  Buffer.contents mj.jbuf
