(** Deterministic synthetic workloads.

    The paper measures on real C and Java sources; our substitute is a
    seeded generator per language so the benchmarks get inputs of
    controlled size with realistic construct mix, reproducible across
    runs and machines (see DESIGN.md, substitutions). *)

open Rats_support

val arith : Rng.t -> size:int -> string
(** Arithmetic expression for the calculator grammar: numbers, the four
    operators, parentheses and [**]. [size] is roughly the number of
    leaf numbers. *)

val json : Rng.t -> size:int -> string
(** A JSON document with about [size] scalar leaves. *)

val minic : Rng.t -> functions:int -> string
(** A MiniC program: a couple of typedefs and a struct, then [functions]
    function definitions with declarations, control flow and expression
    statements. Exercises the typedef state machinery. *)

val minic_extended : Rng.t -> functions:int -> string
(** Like {!minic} but sprinkled with the E6 extension constructs:
    [**] powers, [until] loops and [query { select ... }]. *)

val pathological : depth:int -> string
(** [depth] nested parentheses around a digit — exponential for the
    memoless baseline on the [path.Main] grammar. *)

val adversarial : scale:int -> (string * string) list
(** Labeled hostile inputs for the calculator grammar, used by the E4
    robustness experiment and the resource-governor tests: deep nesting
    (closed, unclosed, and branching) plus wide flat chains that must
    stay within a depth budget. All are deterministic in [scale]; the
    deep variants drive recursion depth ~[scale], the wide variants
    drive fuel ~[scale] at shallow depth. *)

val minijava : Rng.t -> classes:int -> string
(** A MiniJava program: a base class plus [classes] derived classes with
    fields and methods. Entirely stateless — the contrast case to
    {!minic} for the memoization experiments. *)
