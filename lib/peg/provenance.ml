(* Identity assignment for observation: production ids in definition
   order (the id space both back ends already use) and global arm ids
   from a deterministic pre-order walk over every production body.
   Arm lookup is by physical identity of the [Expr.alt] list — the same
   node compiled twice (matcher + recognizer, or an inlined body) maps
   to the same ids, and both back ends walk the same physical grammar. *)

type arm = {
  arm_prod : int;
  arm_choice : int;
  arm_index : int;
  arm_label : string option;
  arm_desc : string;
}

(* Physical-identity table over alt lists. [Hashtbl.hash] is structural
   (and depth-bounded), which is a valid hash for (==) equality: equal
   pointers always hash equally. *)
module Alts = Hashtbl.Make (struct
  type t = Expr.alt list

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type t = {
  names : string array;
  origins : string array;
  arms : arm array;
  bases : int Alts.t;  (** alt list -> arm id of its first arm *)
  ids : (string, int) Hashtbl.t;
}

let empty =
  {
    names = [||];
    origins = [||];
    arms = [||];
    bases = Alts.create 1;
    ids = Hashtbl.create 1;
  }

let truncate s = if String.length s <= 40 then s else String.sub s 0 37 ^ "..."

let of_grammar g =
  let prods = Array.of_list (Grammar.productions g) in
  let nprods = Array.length prods in
  let bases = Alts.create 64 in
  let ids = Hashtbl.create (nprods * 2) in
  let arms = ref [] in
  let narms = ref 0 in
  Array.iteri
    (fun pid (p : Production.t) ->
      Hashtbl.replace ids p.name pid;
      let choice = ref 0 in
      ignore
        (Expr.fold
           (fun () (e : Expr.t) ->
             match e.it with
             | Expr.Alt alts when not (Alts.mem bases alts) ->
                 Alts.replace bases alts !narms;
                 List.iteri
                   (fun i (a : Expr.alt) ->
                     arms :=
                       {
                         arm_prod = pid;
                         arm_choice = !choice;
                         arm_index = i;
                         arm_label = a.label;
                         arm_desc = truncate (Pretty.expr_to_string a.body);
                       }
                       :: !arms;
                     incr narms)
                   alts;
                 incr choice
             | _ -> ())
           () p.expr))
    prods;
  {
    names = Array.map (fun (p : Production.t) -> p.name) prods;
    origins = Array.map (fun (p : Production.t) -> p.origin) prods;
    arms = Array.of_list (List.rev !arms);
    bases;
    ids;
  }

let nprods t = Array.length t.names
let prod_name t i = t.names.(i)
let prod_origin t i = t.origins.(i)
let prod_id t name = Hashtbl.find_opt t.ids name
let narms t = Array.length t.arms
let arm t i = t.arms.(i)

let arms_of t alts =
  match Alts.find_opt t.bases alts with Some base -> base | None -> -1

let pp_arm t ppf i =
  let a = t.arms.(i) in
  Format.fprintf ppf "%s / choice %d / arm %d%s" t.names.(a.arm_prod)
    a.arm_choice a.arm_index
    (match a.arm_label with None -> "" | Some l -> " (" ^ l ^ ")")
