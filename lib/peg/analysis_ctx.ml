module SSet = Analysis.StringSet

type invalidation = Nothing | Analyses

type t = {
  mutable grammar : Grammar.t;
  mutable analysis : Analysis.t option;
  mutable ref_counts : (string, int) Hashtbl.t option;
  mutable terminals : SSet.t option;
  mutable computations : int;
}

let create g =
  {
    grammar = g;
    analysis = None;
    ref_counts = None;
    terminals = None;
    computations = 0;
  }

let grammar t = t.grammar
let computations t = t.computations

let advance t ~invalidates g' =
  t.grammar <- g';
  match invalidates with
  | Nothing -> ()
  | Analyses ->
      t.analysis <- None;
      t.ref_counts <- None;
      t.terminals <- None

let analysis t =
  match t.analysis with
  | Some a -> a
  | None ->
      let a = Analysis.analyze t.grammar in
      t.analysis <- Some a;
      t.computations <- t.computations + 1;
      a

let reachable t = Analysis.reachable (analysis t)
let first t n = Analysis.first (analysis t) n
let nullable t n = Analysis.nullable (analysis t) n

(* --- reference counts, one sweep ---------------------------------------- *)

let compute_ref_counts g =
  let tbl = Hashtbl.create 64 in
  let bump n = Hashtbl.replace tbl n (1 + Option.value ~default:0 (Hashtbl.find_opt tbl n)) in
  List.iter
    (fun (p : Production.t) ->
      Expr.fold
        (fun () (e : Expr.t) ->
          match e.it with Expr.Ref n -> bump n | _ -> ())
        () p.expr)
    (Grammar.productions g);
  bump (Grammar.start g);
  tbl

let ref_count t n =
  let tbl =
    match t.ref_counts with
    | Some tbl -> tbl
    | None ->
        let tbl = compute_ref_counts t.grammar in
        t.ref_counts <- Some tbl;
        tbl
  in
  Option.value ~default:0 (Hashtbl.find_opt tbl n)

(* --- terminal level ------------------------------------------------------ *)

(* A production is terminal when it never builds a tree node and only
   references other terminal productions: character-level machinery.
   Computed as a greatest fixed point (start optimistic, knock out). *)
let compute_terminals g =
  let prods = Grammar.productions g in
  let tbl = Hashtbl.create 64 in
  let locally_ok (p : Production.t) =
    (match p.attrs.Attr.kind with
    | Attr.Generic -> false
    | Attr.Plain | Attr.Text | Attr.Void -> true)
    && Expr.fold
         (fun acc (e : Expr.t) ->
           acc
           && match e.it with
              | Expr.Node _ | Expr.Record _ | Expr.Member _ -> false
              | _ -> true)
         true p.expr
  in
  List.iter (fun (p : Production.t) -> Hashtbl.replace tbl p.name (locally_ok p)) prods;
  let lookup n = try Hashtbl.find tbl n with Not_found -> false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p : Production.t) ->
        if Hashtbl.find tbl p.name then
          if not (List.for_all lookup (Expr.refs p.expr)) then (
            Hashtbl.replace tbl p.name false;
            changed := true))
      prods
  done;
  Hashtbl.fold (fun n ok acc -> if ok then SSet.add n acc else acc) tbl SSet.empty

let terminals t =
  match t.terminals with
  | Some s -> s
  | None ->
      let s = compute_terminals t.grammar in
      t.terminals <- Some s;
      s
