(** Grammar lints: composition mistakes that are legal but almost
    certainly not what the author meant. Reported as warnings by
    [rml analyze]; none of them affect code generation.

    These matter more in a modular world than in a monolithic one: when
    unrelated modules splice alternatives into the same production, dead
    or duplicate alternatives are easy to create and hard to see — the
    check Rats!'s paper calls out as future work for grammar
    composition. *)

open Rats_support

val check : ?analysis:Analysis.t -> Grammar.t -> Diagnostic.t list
(** All warnings, in production order. [analysis] lets a caller that has
    already analyzed the grammar (the optimizer driver's gate) share the
    work; it is used only when it was computed for this very grammar.
    Currently detected:

    - {b duplicate-alternative}: two structurally equal alternatives in
      one choice; the second can never match anything new.
    - {b shadowed-alternative}: a later alternative whose body extends an
      earlier one ([ 'a' / 'a' 'b' ]): whenever the longer one would
      match, the shorter prefix already succeeded — the classic ordering
      mistake when modules splice alternatives into a shared choice.
    - {b dead-alternative}: an alternative placed after one that can
      succeed without consuming input — ordered choice never reaches it.
    - {b redundant-capture}: [$( $(e) )] and [void:void:e] — the inner
      operator is inert.
    - {b always-fails}: a production whose body cannot succeed on any
      input (an empty character class or explicit [%fail] with no
      alternative).
    - {b unreachable-production}: defined but not reachable from the
      start symbol or any public production. *)
