(** Static analyses over closed grammars.

    These power the well-formedness checks Rats! performs before code
    generation (left recursion and vacuous repetition are rejected) and
    feed the optimizer (FIRST sets for choice dispatch and prefix
    factoring, reachability for pruning, statefulness for memoization
    safety). All analyses are monotone fixed points over the production
    set and run in time linear in grammar size times a small number of
    iterations. *)

open Rats_support

module StringSet : Set.S with type elt = string

type nullability =
  | Never_empty  (** every successful match consumes at least one byte *)
  | May_be_empty  (** can succeed without consuming *)

type t
(** Analysis results for one grammar, computed once by {!analyze}. *)

val analyze : Grammar.t -> t
(** Requires a closed grammar (no dangling references); dangling
    references are treated as failing expressions but should be reported
    via {!Grammar.check_closed} first. *)

val grammar : t -> Grammar.t

(** {1 Nullability} *)

val nullable : t -> string -> bool
(** [nullable a n] — may production [n] succeed on the empty string? *)

val expr_nullable : t -> Expr.t -> bool

(** {1 FIRST sets} *)

val first : t -> string -> Charset.t
(** Over-approximation of the set of bytes a successful match of the
    production can start with. When {!nullable} also holds, a match may
    instead start with any byte (it consumes nothing), so dispatch must
    combine both facts. *)

val expr_first : t -> Expr.t -> Charset.t * bool
(** [(set, eps)] — possible first bytes, and whether the expression may
    succeed without consuming input. *)

val expr_yields_unit : t -> Expr.t -> bool
(** Statically known to produce [Value.Unit] on success: literals,
    predicates, drops, void productions, and combinations thereof. The
    engine and the code generator use this to skip value collection in
    repetitions over void bodies. *)

val stores_no_value : t -> Production.t -> bool
(** True when a successful full-mode run of the production provably
    leaves [Value.Unit] in the value register (Void productions, and
    Plain productions whose body {!expr_yields_unit}). Both back ends
    consult this to drop the production's value slot from memo chunks:
    a hit simply restores [Unit] instead of reading a stored value.
    Config-independent, so closure and VM agree slot for slot. *)

val preserves_value : Expr.t -> bool
(** True when a lean (recognizer-mode) run of the expression provably
    never writes the engine's value register: such parts may follow a
    sequence's only value-bearing part without a collection frame to
    protect the result. Both back ends consult this so they agree,
    call site for call site, on which sequences skip collection. *)

(** {1 Reachability} *)

val reachable : t -> StringSet.t
(** Productions reachable from the start symbol. *)

val reachable_from : t -> string list -> StringSet.t

(** {1 Reference counts} *)

val ref_count : t -> string -> int
(** Number of reference sites to the production across the grammar
    (start symbol counts as one extra site). *)

(** {1 State} *)

val stateful : t -> string -> bool
(** Transitively uses [Record]/[Member] parser state. Such productions
    are unsafe to memoize without keying on state, so the engine skips
    their memo slots — mirroring Rats!'s [stateful] attribute. *)

(** {1 Well-formedness} *)

val left_recursion : t -> string list option
(** [Some cycle] when the grammar is left-recursive; the cycle lists the
    productions involved, starting and ending at the same name. *)

val check : t -> Diagnostic.t list
(** Full well-formedness report: left recursion, repetition over a
    nullable body ([e* ] where [e] may match ε), unreachable {e public}
    productions are {e not} errors, but dangling refs are. Empty list
    means the grammar is safe for packrat parsing. *)
