open Rats_support
module StringSet = Set.Make (String)

type nullability = Never_empty | May_be_empty

type t = {
  grammar : Grammar.t;
  nullable_tbl : (string, bool) Hashtbl.t;
  first_tbl : (string, Charset.t) Hashtbl.t;
  stateful_tbl : (string, bool) Hashtbl.t;
  unit_tbl : (string, bool) Hashtbl.t;
  mutable reachable_memo : StringSet.t option;
}

let grammar a = a.grammar

(* --- nullability ------------------------------------------------------- *)

let rec expr_nullable_env lookup (e : Expr.t) =
  match e.it with
  | Expr.Empty -> true
  | Fail _ -> false
  | Any | Chr _ | Str _ | Cls _ -> false
  | Ref n -> lookup n
  | Seq es -> List.for_all (expr_nullable_env lookup) es
  | Alt alts -> List.exists (fun a -> expr_nullable_env lookup a.Expr.body) alts
  | Star _ | Opt _ -> true
  | Plus x -> expr_nullable_env lookup x
  | And _ | Not _ -> true
  | Bind (_, x) | Token x | Node (_, x) | Drop x | Splice x
  | Record (_, x) | Member (_, _, x) ->
      expr_nullable_env lookup x

let compute_nullable g =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (p : Production.t) -> Hashtbl.replace tbl p.name false)
    (Grammar.productions g);
  let lookup n = try Hashtbl.find tbl n with Not_found -> false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p : Production.t) ->
        let v = expr_nullable_env lookup p.expr in
        if v && not (Hashtbl.find tbl p.name) then (
          Hashtbl.replace tbl p.name true;
          changed := true))
      (Grammar.productions g)
  done;
  tbl

(* --- FIRST sets -------------------------------------------------------- *)

let rec expr_first_env ~first ~nullable (e : Expr.t) =
  let recur = expr_first_env ~first ~nullable in
  match e.it with
  | Expr.Empty -> (Charset.empty, true)
  | Fail _ -> (Charset.empty, false)
  | Any -> (Charset.full, false)
  | Chr c -> (Charset.singleton c, false)
  | Str s -> (Charset.singleton s.[0], false)
  | Cls set -> (set, false)
  | Ref n -> (first n, nullable n)
  | Seq es ->
      let rec go set = function
        | [] -> (set, true)
        | e :: rest ->
            let s, eps = recur e in
            let set = Charset.union set s in
            if eps then go set rest else (set, false)
      in
      go Charset.empty es
  | Alt alts ->
      List.fold_left
        (fun (set, eps) a ->
          let s, e = recur a.Expr.body in
          (Charset.union set s, eps || e))
        (Charset.empty, false) alts
  | Star x ->
      let s, _ = recur x in
      (s, true)
  | Plus x -> recur x
  | Opt x ->
      let s, _ = recur x in
      (s, true)
  | And _ | Not _ -> (Charset.empty, true)
  | Bind (_, x) | Token x | Node (_, x) | Drop x | Splice x
  | Record (_, x) | Member (_, _, x) ->
      recur x

let compute_first g nullable_tbl =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (p : Production.t) -> Hashtbl.replace tbl p.name Charset.empty)
    (Grammar.productions g);
  let first n = try Hashtbl.find tbl n with Not_found -> Charset.empty in
  let nullable n = try Hashtbl.find nullable_tbl n with Not_found -> false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p : Production.t) ->
        let s, _ = expr_first_env ~first ~nullable p.expr in
        if not (Charset.equal s (first p.name)) then (
          Hashtbl.replace tbl p.name s;
          changed := true))
      (Grammar.productions g)
  done;
  tbl

(* --- statefulness ------------------------------------------------------ *)

let compute_stateful g =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (p : Production.t) ->
      Hashtbl.replace tbl p.name (Expr.is_stateful p.expr))
    (Grammar.productions g);
  let lookup n = try Hashtbl.find tbl n with Not_found -> false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p : Production.t) ->
        if not (Hashtbl.find tbl p.name) then
          let v = List.exists lookup (Expr.refs p.expr) in
          if v then (
            Hashtbl.replace tbl p.name true;
            changed := true))
      (Grammar.productions g)
  done;
  tbl

(* --- construction ------------------------------------------------------ *)

(* Does an expression always produce [Value.Unit] on success? Computed as
   a greatest fixed point over productions: a [Plain] production whose
   body is unit-valued is itself unit-valued. *)
let rec expr_unit_env lookup (e : Expr.t) =
  match e.it with
  | Expr.Empty | Chr _ | Str _ | And _ | Not _ | Drop _ -> true
  | Fail _ -> true (* never succeeds, so its value is irrelevant *)
  | Any | Cls _ | Token _ | Node _ | Bind _ -> false
  | Ref n -> lookup n
  | Seq es -> List.for_all (expr_unit_env lookup) es
  | Alt alts -> List.for_all (fun x -> expr_unit_env lookup x.Expr.body) alts
  | Star x | Plus x | Opt x -> expr_unit_env lookup x
  | Splice x | Record (_, x) | Member (_, _, x) -> expr_unit_env lookup x

let compute_unit g =
  let tbl = Hashtbl.create 64 in
  (* Optimistic start: Plain and Void productions assumed unit. *)
  List.iter
    (fun (p : Production.t) ->
      let init =
        match p.attrs.Attr.kind with
        | Attr.Void -> true
        | Attr.Plain -> true
        | Attr.Text | Attr.Generic -> false
      in
      Hashtbl.replace tbl p.name init)
    (Grammar.productions g);
  let lookup n = try Hashtbl.find tbl n with Not_found -> false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p : Production.t) ->
        if Hashtbl.find tbl p.name && p.attrs.Attr.kind = Attr.Plain then
          if not (expr_unit_env lookup p.expr) then (
            Hashtbl.replace tbl p.name false;
            changed := true))
      (Grammar.productions g)
  done;
  tbl

let analyze g =
  let nullable_tbl = compute_nullable g in
  {
    grammar = g;
    nullable_tbl;
    first_tbl = compute_first g nullable_tbl;
    stateful_tbl = compute_stateful g;
    unit_tbl = compute_unit g;
    reachable_memo = None;
  }

let nullable a n = try Hashtbl.find a.nullable_tbl n with Not_found -> false

let expr_nullable a e =
  expr_nullable_env (fun n -> nullable a n) e

let first a n = try Hashtbl.find a.first_tbl n with Not_found -> Charset.empty

let expr_first a e =
  expr_first_env ~first:(first a) ~nullable:(nullable a) e

let stateful a n = try Hashtbl.find a.stateful_tbl n with Not_found -> false

let expr_yields_unit a e =
  expr_unit_env
    (fun n -> try Hashtbl.find a.unit_tbl n with Not_found -> false)
    e

(* A production's memo slot never needs a value when every successful
   full-mode run of its body leaves [Value.Unit] in the register: Void
   productions (their shape writes Unit unconditionally) and Plain
   productions whose body is statically unit. Text and Generic always
   produce a string or node. Lean (recognizer) hits never read the
   value slot, so only full-mode stores matter — and those run the
   full body, where [expr_yields_unit] is exact. *)
let stores_no_value a (p : Production.t) =
  match p.attrs.Attr.kind with
  | Attr.Void -> true
  | Attr.Plain -> expr_yields_unit a p.expr
  | Attr.Text | Attr.Generic -> false

(* Purely structural: calls (and the table operators, which manage
   value frames of their own) are conservatively excluded — a callee
   body may use the engine's value register as scratch space. *)
let rec preserves_value (e : Expr.t) =
  match e.it with
  | Expr.Empty | Expr.Fail _ | Expr.Any | Expr.Chr _ | Expr.Str _
  | Expr.Cls _ ->
      true
  | Expr.Seq es -> List.for_all preserves_value es
  | Expr.Alt alts ->
      List.for_all (fun (a : Expr.alt) -> preserves_value a.body) alts
  | Expr.Star x | Expr.Plus x | Expr.Opt x | Expr.And x | Expr.Not x
  | Expr.Token x | Expr.Drop x
  | Expr.Bind (_, x) ->
      preserves_value x
  | Expr.Ref _ | Expr.Node _ | Expr.Splice _ | Expr.Record _
  | Expr.Member _ ->
      false

(* --- reachability ------------------------------------------------------ *)

let reachable_from a roots =
  let seen = Hashtbl.create 64 in
  let rec visit n =
    if not (Hashtbl.mem seen n) then (
      Hashtbl.add seen n ();
      match Grammar.find a.grammar n with
      | None -> ()
      | Some p -> List.iter visit (Expr.refs p.expr))
  in
  List.iter visit roots;
  Hashtbl.fold (fun n () acc -> StringSet.add n acc) seen StringSet.empty

let reachable a =
  match a.reachable_memo with
  | Some s -> s
  | None ->
      let roots =
        Grammar.start a.grammar
        :: List.filter_map
             (fun (p : Production.t) ->
               if Production.is_public p then Some p.name else None)
             (Grammar.productions a.grammar)
      in
      let s = reachable_from a roots in
      a.reachable_memo <- Some s;
      s

let ref_count a name =
  let count_in (p : Production.t) =
    Expr.fold
      (fun acc e ->
        match e.Expr.it with
        | Expr.Ref n when String.equal n name -> acc + 1
        | _ -> acc)
      0 p.expr
  in
  let refs =
    List.fold_left
      (fun acc p -> acc + count_in p)
      0
      (Grammar.productions a.grammar)
  in
  if String.equal (Grammar.start a.grammar) name then refs + 1 else refs

(* --- left recursion ----------------------------------------------------- *)

(* Edges of the "invocable at the same input position" relation. Predicates
   parse at the current position, so their bodies contribute edges too. *)
let left_edges a (p : Production.t) =
  let acc = ref StringSet.empty in
  (* Returns true when e may succeed without consuming input, i.e. whatever
     follows e in a sequence is still at the start position. *)
  let rec go (e : Expr.t) =
    match e.it with
    | Expr.Empty -> true
    | Fail _ -> false
    | Any | Chr _ | Str _ | Cls _ -> false
    | Ref n ->
        acc := StringSet.add n !acc;
        nullable a n
    | Seq es ->
        let rec seq = function
          | [] -> true
          | e :: rest -> if go e then seq rest else false
        in
        seq es
    | Alt alts ->
        List.fold_left (fun eps alt -> go alt.Expr.body || eps) false alts
    | Star x ->
        ignore (go x);
        true
    | Plus x -> go x
    | Opt x ->
        ignore (go x);
        true
    | And x | Not x ->
        ignore (go x);
        true
    | Bind (_, x) | Token x | Node (_, x) | Drop x | Splice x
    | Record (_, x) | Member (_, _, x) ->
        go x
  in
  ignore (go p.expr);
  !acc

let left_recursion a =
  let edges = Hashtbl.create 64 in
  List.iter
    (fun (p : Production.t) -> Hashtbl.replace edges p.name (left_edges a p))
    (Grammar.productions a.grammar);
  let color = Hashtbl.create 64 in
  (* 1 = on stack, 2 = done *)
  let exception Cycle of string list in
  let rec visit path n =
    match Hashtbl.find_opt color n with
    | Some 2 -> ()
    | Some _ ->
        let cycle =
          let rec take = function
            | [] -> []
            | x :: rest -> if String.equal x n then [ x ] else x :: take rest
          in
          n :: List.rev (take path)
        in
        raise (Cycle cycle)
    | None ->
        Hashtbl.replace color n 1;
        (match Hashtbl.find_opt edges n with
        | None -> ()
        | Some succ -> StringSet.iter (visit (n :: path)) succ);
        Hashtbl.replace color n 2
  in
  try
    List.iter
      (fun (p : Production.t) -> visit [] p.name)
      (Grammar.productions a.grammar);
    None
  with Cycle c -> Some c

(* --- well-formedness ---------------------------------------------------- *)

let check a =
  let dangling = Grammar.check_closed a.grammar in
  let left_rec =
    match left_recursion a with
    | None -> []
    | Some cycle ->
        [
          Diagnostic.error
            ~notes:[ "cycle: " ^ String.concat " -> " cycle ]
            "grammar is left-recursive; packrat parsing would not terminate";
        ]
  in
  let vacuous =
    List.concat_map
      (fun (p : Production.t) ->
        Expr.fold
          (fun acc (e : Expr.t) ->
            match e.it with
            | Expr.Star x | Expr.Plus x when expr_nullable a x ->
                Diagnostic.errorf ~span:e.loc
                  "repetition over a nullable expression in production %S \
                   would loop forever"
                  p.name
                :: acc
            | _ -> acc)
          [] p.expr)
      (Grammar.productions a.grammar)
  in
  dangling @ left_rec @ vacuous
