(** Stable observation identities for productions and choice arms.

    The observability layer ({!Rats_runtime}) attributes cost and
    coverage to grammar-level entities, not to whatever the back ends
    compiled them into. This module assigns those identities once, from
    the prepared grammar itself: production ids follow definition order
    (exactly the id spaces both back ends already use), and every arm of
    every [Alt] node gets a global arm id from a deterministic pre-order
    walk. Because both back ends compile the same physical [Expr.t]
    nodes, arm ids are recovered at compile time by physical identity —
    robust against a body being compiled more than once (the closure
    engine compiles each production twice, matcher and recognizer), and
    identical across back ends by construction, which is what lets the
    property suite compare coverage bitmaps closure-vs-VM.

    Inlining attribution: when the bytecode compiler inlines a
    production's body at a call site, the body's [Alt] nodes are still
    the origin production's physical nodes, so their arm ids — and the
    production id the emitter knew at the inline site — keep charging
    the origin production. Productions dissolved by the grammar-level
    inline pass no longer exist when observation ids are assigned; their
    cost is charged to the caller that absorbed them. *)

type arm = {
  arm_prod : int;  (** production id of the enclosing production *)
  arm_choice : int;  (** ordinal of the [Alt] node within that production *)
  arm_index : int;  (** position of the arm inside its choice, from 0 *)
  arm_label : string option;  (** the arm's modification label, if any *)
  arm_desc : string;  (** pretty-printed arm body, truncated *)
}

type t

val of_grammar : Grammar.t -> t
(** Walk the grammar once and assign every identity. Deterministic: the
    same grammar value always yields the same numbering. *)

val empty : t
(** No productions, no arms — the sink of an observation-off engine. *)

val nprods : t -> int
val prod_name : t -> int -> string

val prod_origin : t -> int -> string
(** The module that contributed the production ([""] for synthesized
    ones) — what [rml coverage] reports next to dead alternatives. *)

val prod_id : t -> string -> int option

val narms : t -> int
val arm : t -> int -> arm

val arms_of : t -> Expr.alt list -> int
(** [arms_of t alts] is the arm id of [alts]'s first arm, found by
    physical identity; the remaining arms follow consecutively. Returns
    [-1] for a list that is not part of the walked grammar (a
    synthesized choice the optimizer created after the walk — observed
    conservatively as nothing). *)

val pp_arm : t -> Format.formatter -> int -> unit
(** ["Prod / choice 2 / arm 1 (label)"] — the human-readable identity
    used by coverage reports. *)
