(** Shared analysis cache for grammar transformation pipelines.

    The optimizer passes all consume the same static facts — FIRST sets,
    nullability, reachability, reference counts, the terminal level — but
    each pass used to recompute them from scratch. An [Analysis_ctx.t]
    owns one grammar snapshot plus every analysis computed against it, so
    a pass manager can hand the same cache to each pass and only discard
    what a transformation actually invalidates.

    The cache is deliberately conservative: every query checks that the
    caller's grammar is (physically) the cached snapshot and falls back
    to a fresh computation otherwise, so a stale context can cost time
    but never correctness. *)

type invalidation =
  | Nothing
      (** The pass only flips memoization attributes ([Attr.memo]); no
          analysis reads those, so every cached fact stays valid. *)
  | Analyses
      (** The pass may change production structure, names or kinds:
          drop all cached analyses. *)

type t

val create : Grammar.t -> t
val grammar : t -> Grammar.t
(** The current snapshot the cached facts are valid for. *)

val advance : t -> invalidates:invalidation -> Grammar.t -> unit
(** [advance t ~invalidates g'] moves the context to the post-pass
    grammar [g'], dropping cached analyses according to [invalidates]. *)

val analysis : t -> Analysis.t
(** The full {!Analysis} record (nullability, FIRST sets, statefulness,
    reachability) for the snapshot; computed on first use. *)

val reachable : t -> Analysis.StringSet.t
val first : t -> string -> Charset.t
val nullable : t -> string -> bool

val ref_count : t -> string -> int
(** Like {!Analysis.ref_count}, but all counts are computed in one sweep
    over the grammar on first use instead of one sweep per query. *)

val terminals : t -> Analysis.StringSet.t
(** Productions at the lexical level: they never build syntax-tree nodes
    or touch parser state, and transitively reference only such
    productions (greatest fixed point). This is the set the terminal
    optimization unmemoizes. *)

val computations : t -> int
(** How many full {!Analysis.analyze} runs this context has performed —
    instrumentation for tests proving that caching actually shares. *)
