open Rats_support
module SSet = Analysis.StringSet

let warnf ?span fmt = Format.kasprintf (fun m -> Diagnostic.warning ?span m) fmt

(* Can the expression ever succeed? A conservative "no" only for shapes
   that provably fail: Fail nodes and sequences/wrappers containing
   one, or choices all of whose branches fail. *)
let rec never_succeeds (e : Expr.t) =
  match e.it with
  | Expr.Fail _ -> true
  | Expr.Seq es -> List.exists never_succeeds es
  | Expr.Alt alts -> List.for_all (fun a -> never_succeeds a.Expr.body) alts
  | Expr.Plus x -> never_succeeds x
  | Expr.Bind (_, x)
  | Expr.Token x
  | Expr.Node (_, x)
  | Expr.Drop x
  | Expr.Splice x
  | Expr.And x
  | Expr.Record (_, x)
  | Expr.Member (_, _, x) ->
      never_succeeds x
  | Expr.Empty | Expr.Any | Expr.Chr _ | Expr.Str _ | Expr.Cls _ | Expr.Ref _
  | Expr.Star _ | Expr.Opt _ | Expr.Not _ ->
      false

let seq_items (e : Expr.t) =
  match e.it with Expr.Seq es -> es | Expr.Empty -> [] | _ -> [ e ]

(* [a] is a strict structural prefix of [b]: whenever [b] would match,
   [a] (tried first) already succeeds, so [b] is unreachable. *)
let is_strict_prefix a b =
  let xs = seq_items a and ys = seq_items b in
  let rec go xs ys =
    match (xs, ys) with
    | [], _ :: _ -> true
    | x :: xs, y :: ys -> Expr.equal x y && go xs ys
    | _, [] -> false
  in
  go xs ys

let expr_warnings a pname (e : Expr.t) =
  let out = ref [] in
  let warn ?span fmt = Format.kasprintf (fun m ->
      out := Diagnostic.warning ?span m :: !out) fmt
  in
  let rec go (e : Expr.t) =
    (match e.it with
    | Expr.Alt alts ->
        (* duplicate alternatives *)
        let rec dups seen = function
          | [] -> ()
          | (alt : Expr.alt) :: rest ->
              if List.exists (fun s -> Expr.equal s alt.body) seen then
                warn ~span:alt.body.Expr.loc
                  "production %S: duplicate alternative %S can never match \
                   anything new"
                  pname
                  (Pretty.expr_to_string alt.body)
              else ();
              dups (alt.body :: seen) rest
        in
        dups [] alts;
        (* a later alternative shadowed by an earlier strict prefix *)
        let rec shadows = function
          | [] -> ()
          | (alt : Expr.alt) :: rest ->
              List.iter
                (fun (later : Expr.alt) ->
                  if is_strict_prefix alt.body later.body then
                    warn ~span:later.body.Expr.loc
                      "production %S: alternative %S is shadowed by the \
                       earlier prefix alternative %S"
                      pname
                      (Pretty.expr_to_string later.body)
                      (Pretty.expr_to_string alt.body))
                rest;
              shadows rest
        in
        shadows alts;
        (* dead alternatives after an epsilon-succeeding one *)
        let rec dead = function
          | [] | [ _ ] -> ()
          | (alt : Expr.alt) :: (next :: _ as rest) ->
              if Analysis.expr_nullable a alt.body then
                warn ~span:next.Expr.body.Expr.loc
                  "production %S: alternative %S can succeed on the empty \
                   string, so later alternatives are unreachable"
                  pname
                  (Pretty.expr_to_string alt.body)
              else dead rest
        in
        dead alts
    | Expr.Token { it = Expr.Token _; _ } ->
        warn ~span:e.loc
          "production %S: nested $() capture — the inner one is inert" pname
    | Expr.Drop { it = Expr.Drop _; _ } ->
        warn ~span:e.loc
          "production %S: nested void: — the inner one is inert" pname
    | _ -> ());
    Expr.iter_children go e
  in
  go e;
  List.rev !out

let check ?analysis g =
  let a =
    match analysis with
    | Some a when Analysis.grammar a == g -> a
    | _ -> Analysis.analyze g
  in
  let reachable = Analysis.reachable a in
  List.concat_map
    (fun (p : Production.t) ->
      let local = expr_warnings a p.name p.expr in
      let fails =
        if never_succeeds p.expr then
          [
            warnf ~span:p.loc "production %S can never succeed on any input"
              p.name;
          ]
        else []
      in
      let unreachable =
        if SSet.mem p.name reachable then []
        else
          [
            warnf ~span:p.loc
              "production %S is unreachable from the start symbol and the \
               public productions"
              p.name;
          ]
      in
      local @ fails @ unreachable)
    (Grammar.productions g)
